package flow_test

// These tests pin the per-function summary facts — allocation effects,
// escaping parameters, spawns and termination signals, atomic field
// updates — on the flowfix fixture package, independent of the
// analyzers that consume them. The fixture is parsed and type-checked
// directly (one file, stdlib imports only), with a static-callee
// resolver mirroring the one internal/analysis supplies.

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"path/filepath"
	"sync"
	"testing"

	"aurora/internal/analysis/flow"
)

var (
	fixOnce sync.Once
	fixSet  *flow.Set
	fixErr  error
)

func fixture(t *testing.T) *flow.Set {
	t.Helper()
	fixOnce.Do(func() {
		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, filepath.Join("testdata", "flowfix.go"), nil, parser.ParseComments)
		if err != nil {
			fixErr = err
			return
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
			Scopes:     make(map[ast.Node]*types.Scope),
		}
		conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
		if _, err := conf.Check("flowfix", fset, []*ast.File{file}, info); err != nil {
			fixErr = err
			return
		}
		var funcs []flow.Func
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			funcs = append(funcs, flow.Func{Obj: fn, Decl: fd, Info: info})
		}
		fixSet = flow.Build(funcs, func(_ flow.Func, call *ast.CallExpr) []*types.Func {
			return staticCallees(info, call)
		})
	})
	if fixErr != nil {
		t.Fatalf("fixture: %v", fixErr)
	}
	return fixSet
}

// staticCallees resolves direct function, concrete-method and qualified
// (pkg.Func) calls, like Facts.resolveCallees without interface fan-out.
func staticCallees(info *types.Info, call *ast.CallExpr) []*types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return []*types.Func{fn}
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if sel.Kind() != types.MethodVal {
				return nil
			}
			if m, ok := sel.Obj().(*types.Func); ok {
				return []*types.Func{m}
			}
			return nil
		}
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return []*types.Func{fn}
		}
	}
	return nil
}

// summary finds the fixture function's summary by name.
func summary(t *testing.T, name string) *flow.Summary {
	t.Helper()
	for _, sum := range fixture(t).Summaries() {
		if sum.Fn.Name() == name {
			return sum
		}
	}
	t.Fatalf("no summary for %q", name)
	return nil
}

func TestAllocKinds(t *testing.T) {
	tests := []struct {
		fn   string
		want []flow.AllocKind
	}{
		{"MakeMap", []flow.AllocKind{flow.AllocMake}},
		{"Grow", []flow.AllocKind{flow.AllocAppend}},
		{"Box", []flow.AllocKind{flow.AllocBoxing}},
		{"Convert", []flow.AllocKind{flow.AllocConvert}},
		{"Concat", []flow.AllocKind{flow.AllocStringConcat}},
		{"RangeMap", []flow.AllocKind{flow.AllocMapRange}},
		{"CallsMake", nil},
		{"Pure", nil},
		{"Leak", nil},
	}
	for _, tc := range tests {
		t.Run(tc.fn, func(t *testing.T) {
			sum := summary(t, tc.fn)
			var got []flow.AllocKind
			for _, a := range sum.Allocs {
				got = append(got, a.Kind)
			}
			if len(got) != len(tc.want) {
				t.Fatalf("allocs = %v, want %v", got, tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Errorf("alloc %d = %v, want %v", i, got[i], tc.want[i])
				}
			}
		})
	}
}

func TestTransitiveAllocs(t *testing.T) {
	tests := []struct {
		fn   string
		want bool
	}{
		{"MakeMap", true},   // direct
		{"CallsMake", true}, // only through MakeMap
		{"Pure", false},
		{"Keep", false},
	}
	for _, tc := range tests {
		t.Run(tc.fn, func(t *testing.T) {
			if got := summary(t, tc.fn).AllocsTransitive; got != tc.want {
				t.Errorf("AllocsTransitive = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestParamEscapes(t *testing.T) {
	tests := []struct {
		fn   string
		want map[int]bool // param index (receiver-first for methods) -> escapes
	}{
		{"Leak", map[int]bool{0: true}},
		{"Keep", map[int]bool{0: false}},
		{"SendsTo", map[int]bool{1: true}}, // p is published through ch
	}
	for _, tc := range tests {
		t.Run(tc.fn, func(t *testing.T) {
			sum := summary(t, tc.fn)
			for idx, want := range tc.want {
				if idx >= len(sum.ParamEscapes) {
					t.Fatalf("ParamEscapes has %d entries, want index %d", len(sum.ParamEscapes), idx)
				}
				if got := sum.ParamEscapes[idx]; got != want {
					t.Errorf("ParamEscapes[%d] = %v, want %v", idx, got, want)
				}
			}
		})
	}
}

func TestSpawnSignals(t *testing.T) {
	tests := []struct {
		fn      string
		spawns  int
		wantSig flow.Signal // bits that must be present; 0 means none at all
	}{
		{"Spinner", 1, 0},
		{"WatchCtx", 1, flow.SigContext},
		{"Tracked", 1, flow.SigWaitGroup},
		{"Run", 1, flow.SigChanRecv}, // transitive, through loop
		{"Pure", 0, 0},
	}
	for _, tc := range tests {
		t.Run(tc.fn, func(t *testing.T) {
			sum := summary(t, tc.fn)
			if len(sum.Spawns) != tc.spawns {
				t.Fatalf("got %d spawns, want %d", len(sum.Spawns), tc.spawns)
			}
			if tc.spawns == 0 {
				return
			}
			sig := sum.Spawns[0].Signal()
			if tc.wantSig == 0 {
				if sig != 0 {
					t.Errorf("Signal() = %v, want none", sig)
				}
				return
			}
			if sig&tc.wantSig == 0 {
				t.Errorf("Signal() = %v, missing %v", sig, tc.wantSig)
			}
		})
	}
}

func TestAtomics(t *testing.T) {
	sum := summary(t, "Inc")
	if len(sum.Atomics) != 1 {
		t.Fatalf("got %d atomic ops, want 1: %+v", len(sum.Atomics), sum.Atomics)
	}
	op := sum.Atomics[0]
	if !op.ByAddress {
		t.Errorf("ByAddress = false, want true")
	}
	if op.Op != "atomic.AddInt64" {
		t.Errorf("Op = %q, want atomic.AddInt64", op.Op)
	}
	if op.Field == nil || op.Field.Name() != "n" {
		t.Errorf("Field = %v, want n", op.Field)
	}
}
