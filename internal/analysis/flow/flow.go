// Package flow is the interprocedural dataflow layer under
// internal/analysis: a lightweight def-use IR over the already
// type-checked ASTs. For every declared function it computes a Summary —
// direct allocation sites, goroutines spawned, termination signals,
// locks/atomics touched, and which parameters may escape the call frame
// — then propagates the transitive facts (allocation effects, signal
// reachability, escape flow through call arguments) across the static
// call graph to a fixpoint, so the analyzers built on top (allochot,
// goroleak, atomicmix) reason about whole call trees spanning packages,
// not single bodies.
//
// The package deliberately depends only on go/ast and go/types: the
// caller (internal/analysis) supplies the parsed functions and a callee
// resolver, keeping the layering acyclic. Precision trade-offs are
// documented per fact in DESIGN.md §13.
package flow

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// AllocKind classifies one direct allocation (or allocation-like) site.
type AllocKind int

// The allocation classes allochot reports. They are deliberately
// conservative: a value composite literal is free, but &T{}, map/slice
// literals, escaping closures and interface boxing are charged even
// where the compiler's own escape analysis might stack-allocate them.
const (
	AllocMake        AllocKind = iota + 1 // make(map/slice/chan)
	AllocNew                              // new(T)
	AllocComposite                        // &T{...}, or a map/slice literal
	AllocAppend                           // append may grow its backing array
	AllocCall                             // call into allocating stdlib (fmt, errors, ...)
	AllocConvert                          // string<->[]byte/[]rune conversion
	AllocBoxing                           // concrete value boxed into an interface
	AllocClosure                          // escaping func literal captures its frame
	AllocMapRange                         // map iteration: hidden iterator, random order
	AllocGoStmt                           // go statement allocates a goroutine stack
	AllocDefer                            // defer frame (heap-allocated in loops)
	AllocStringConcat                     // string + string builds a new string
	AllocOpaqueCall                       // call through an unresolved function value
)

// String names the allocation class for diagnostics and tests.
func (k AllocKind) String() string {
	switch k {
	case AllocMake:
		return "make"
	case AllocNew:
		return "new"
	case AllocComposite:
		return "composite"
	case AllocAppend:
		return "append"
	case AllocCall:
		return "call"
	case AllocConvert:
		return "convert"
	case AllocBoxing:
		return "boxing"
	case AllocClosure:
		return "closure"
	case AllocMapRange:
		return "maprange"
	case AllocGoStmt:
		return "go"
	case AllocDefer:
		return "defer"
	case AllocStringConcat:
		return "concat"
	case AllocOpaqueCall:
		return "opaque-call"
	default:
		return "alloc?"
	}
}

// Alloc is one direct allocation site inside a function body.
type Alloc struct {
	Pos  token.Pos
	Kind AllocKind
	What string // detail: the callee, the boxed type, the converted type...
}

// Signal is a bitmask of goroutine termination/completion signals.
type Signal uint8

// The signal classes goroleak accepts as evidence that a goroutine's
// lifetime is bounded or observable.
const (
	SigChanRecv  Signal = 1 << iota // receives from a channel (incl. select, range)
	SigChanSend                     // sends a value (completion handoff)
	SigChanClose                    // closes a done channel
	SigWaitGroup                    // sync.WaitGroup Done/Wait
	SigContext                      // consults a context.Context
	SigParPool                      // runs under the internal/par bounded pool
)

// String renders the set, e.g. "chan-recv|waitgroup"; "none" when empty.
func (s Signal) String() string {
	if s == 0 {
		return "none"
	}
	names := []struct {
		bit  Signal
		name string
	}{
		{SigChanRecv, "chan-recv"}, {SigChanSend, "chan-send"},
		{SigChanClose, "chan-close"}, {SigWaitGroup, "waitgroup"},
		{SigContext, "context"}, {SigParPool, "par-pool"},
	}
	var parts []string
	for _, n := range names {
		if s&n.bit != 0 {
			parts = append(parts, n.name)
		}
	}
	return strings.Join(parts, "|")
}

// Spawn is one `go` statement: where, what it runs, and the termination
// signals provable for the spawned goroutine. For a spawned function
// literal, Direct holds the signals found lexically inside the literal
// and Callees the calls made from it; for `go f(...)`, Callees is the
// resolved f and Direct is empty. Signal() joins both with the callees'
// transitive signals after the fixpoint.
type Spawn struct {
	Pos     token.Pos
	Callees []*types.Func
	Direct  Signal
	What    string // display name of the spawned function, or "func literal"

	set *Set
}

// Signal returns every termination signal provable for the spawned
// goroutine: lexical signals of the spawned literal plus the transitive
// signals of everything it (or the spawned function) calls.
func (sp *Spawn) Signal() Signal {
	s := sp.Direct
	for _, fn := range sp.Callees {
		if sum := sp.set.Summary(fn); sum != nil {
			s |= sum.Transitive
		}
	}
	return s
}

// AtomicOp is one sync/atomic touch of a struct field: either an
// old-style address call (atomic.AddInt64(&s.f, 1), ByAddress=true) or a
// method call on an atomic.X-typed field (s.f.Load()).
type AtomicOp struct {
	Field     *types.Var
	Pos       token.Pos
	Op        string // e.g. "atomic.AddInt64" or "(atomic.Int64).Load"
	ByAddress bool
}

// Summary is the per-function node of the dataflow IR.
type Summary struct {
	Fn   *types.Func
	Decl *ast.FuncDecl

	// Allocation effects. Allocs lists the direct sites in source order;
	// AllocsTransitive reports whether this function or anything it
	// (synchronously) calls inside the module allocates.
	Allocs           []Alloc
	AllocsTransitive bool

	// Goroutine facts. Spawns lists the `go` statements; Direct the
	// termination signals lexically in this body (excluding nested go
	// subtrees, which belong to the spawned goroutine); Transitive adds
	// the signals of every synchronous callee, to a fixpoint.
	Spawns     []*Spawn
	Direct     Signal
	Transitive Signal

	// ParamEscapes has one entry per parameter (receiver first for
	// methods): true when the pointed-to value may outlive the call frame
	// — stored through non-local memory, sent on a channel, returned,
	// captured by an escaping closure, or passed to a callee position
	// that itself escapes (propagated to a fixpoint). Non-pointer-like
	// parameters are always false.
	ParamEscapes []bool

	// Synchronization facts: atomics touched and mutex fields locked.
	Atomics []AtomicOp
	Locks   []*types.Var

	// calls are the deduplicated synchronous static callees (calls under
	// a go statement excluded) — the edges the fixpoints run over.
	calls []*types.Func

	// escape-graph state (built by buildEscapes, solved by the fixpoint).
	escParams []types.Object
	escNodes  map[types.Object]*escNode
	escaped   map[types.Object]bool
}

// Func is one input function: its object, declaration and the
// type-checker results of its package.
type Func struct {
	Obj  *types.Func
	Decl *ast.FuncDecl
	Info *types.Info
}

// Set holds the summaries of one module, after fixpoint propagation.
type Set struct {
	summaries map[*types.Func]*Summary
	order     []*Summary
	lit       map[*ast.FuncDecl]*litFacts
}

// Summary returns fn's summary, or nil for functions outside the
// analyzed set (stdlib, function values).
func (s *Set) Summary(fn *types.Func) *Summary { return s.summaries[fn] }

// Summaries returns every summary in source order.
func (s *Set) Summaries() []*Summary { return s.order }

// Build computes all summaries and runs the fixpoints. resolve maps a
// call expression inside fn to its static callees (nil for calls of
// function values) — internal/analysis passes its fact-store resolver.
func Build(funcs []Func, resolve func(fn Func, call *ast.CallExpr) []*types.Func) *Set {
	s := &Set{
		summaries: make(map[*types.Func]*Summary, len(funcs)),
		lit:       make(map[*ast.FuncDecl]*litFacts),
	}
	for _, f := range funcs {
		if f.Decl == nil || f.Decl.Body == nil || f.Obj == nil {
			continue
		}
		w := &walker{fn: f, resolve: resolve, set: s}
		sum := w.run()
		s.summaries[f.Obj] = sum
		s.order = append(s.order, sum)
	}
	sort.Slice(s.order, func(i, j int) bool { return s.order[i].Decl.Pos() < s.order[j].Decl.Pos() })
	s.fixpoint()
	propagateEscapes(s)
	return s
}

// fixpoint propagates AllocsTransitive and Transitive signals over the
// synchronous call edges until nothing changes. Both facts are monotone
// bits, so iteration terminates in at most lattice-height passes.
func (s *Set) fixpoint() {
	for changed := true; changed; {
		changed = false
		for _, sum := range s.order {
			allocs := sum.AllocsTransitive
			sig := sum.Transitive
			for _, callee := range sum.calls {
				if c := s.summaries[callee]; c != nil {
					allocs = allocs || c.AllocsTransitive
					sig |= c.Transitive
				}
			}
			if allocs != sum.AllocsTransitive || sig != sum.Transitive {
				sum.AllocsTransitive = allocs
				sum.Transitive = sig
				changed = true
			}
		}
	}
}

// walker computes one function's direct summary.
type walker struct {
	fn      Func
	resolve func(fn Func, call *ast.CallExpr) []*types.Func
	set     *Set

	sum      *Summary
	seenCall map[*types.Func]bool
	goDepth  int
}

func (w *walker) run() *Summary {
	w.sum = &Summary{
		Fn:               w.fn.Obj,
		Decl:             w.fn.Decl,
		AllocsTransitive: false,
	}
	w.seenCall = make(map[*types.Func]bool)
	w.walk(w.fn.Decl.Body)
	w.sum.AllocsTransitive = len(w.sum.Allocs) > 0
	w.sum.Transitive = w.sum.Direct
	buildEscapes(w.fn, w.sum, w.set, w.resolve)
	return w.sum
}

func (w *walker) alloc(pos token.Pos, kind AllocKind, what string) {
	w.sum.Allocs = append(w.sum.Allocs, Alloc{Pos: pos, Kind: kind, What: what})
}

func (w *walker) signal(sig Signal) {
	if w.goDepth == 0 {
		w.sum.Direct |= sig
	}
}

// walk visits one statement/expression tree, keeping track of whether we
// are under a `go` statement (signals below one belong to the spawned
// goroutine, and calls below one are not synchronous call edges).
func (w *walker) walk(n ast.Node) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			w.spawn(n)
			w.alloc(n.Pos(), AllocGoStmt, "")
			// Walk the subtree with goDepth raised: allocation sites are
			// still recorded, but signals and call edges below belong to
			// the spawned goroutine, not this function.
			w.goDepth++
			w.walkGoSubtree(n)
			w.goDepth--
			return false
		case *ast.DeferStmt:
			w.alloc(n.Pos(), AllocDefer, "")
			return true
		case *ast.SendStmt:
			w.signal(SigChanSend)
			return true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				w.signal(SigChanRecv)
			}
			if n.Op == token.AND {
				if lit, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					w.alloc(n.Pos(), AllocComposite, typeString(w.typeOf(lit)))
				}
			}
			return true
		case *ast.RangeStmt:
			switch w.typeOf(n.X).(type) {
			case *types.Chan:
				w.signal(SigChanRecv)
			case *types.Map:
				w.alloc(n.Pos(), AllocMapRange, "")
			}
			return true
		case *ast.AssignStmt:
			// Boxing through plain assignment to an interface-typed
			// variable (x = v where x is an interface). := never boxes:
			// the new variable takes the concrete type.
			if n.Tok == token.ASSIGN && len(n.Lhs) == len(n.Rhs) {
				for i, rhs := range n.Rhs {
					if w.boxes(rhs, w.typeOf(n.Lhs[i])) {
						w.alloc(rhs.Pos(), AllocBoxing, typeString(w.typeOf(rhs)))
					}
				}
			}
			return true
		case *ast.ValueSpec:
			// var x Iface = v with an explicit interface type.
			if n.Type != nil {
				for _, rhs := range n.Values {
					if w.boxes(rhs, w.typeOf(n.Type)) {
						w.alloc(rhs.Pos(), AllocBoxing, typeString(w.typeOf(rhs)))
					}
				}
			}
			return true
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(w.typeOf(n)) && !w.isConstant(n) {
				w.alloc(n.Pos(), AllocStringConcat, "")
			}
			return true
		case *ast.CompositeLit:
			w.composite(n)
			return true
		case *ast.FuncLit:
			// Walked in place: the literal body is lexically part of this
			// function, so its allocs/atomics are attributed here. Escaping
			// literals are additionally charged as closure allocations.
			if w.set.lits(w.fn).escaping[n] {
				w.alloc(n.Pos(), AllocClosure, "")
			}
			return true
		case *ast.CallExpr:
			w.call(n)
			return true
		case *ast.SelectorExpr:
			w.selector(n)
			return true
		}
		return true
	})
}

// walkGoSubtree records spawned-goroutine content (alloc sites, nested
// spawns) without contributing signals or synchronous call edges. A
// spawned literal's body is walked directly so the literal itself is not
// double-charged as a closure on top of the AllocGoStmt.
func (w *walker) walkGoSubtree(g *ast.GoStmt) {
	if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
		w.walk(lit.Body)
	} else {
		w.walk(g.Call.Fun)
	}
	for _, arg := range g.Call.Args {
		w.walk(arg)
	}
}

// spawn records one `go` statement.
func (w *walker) spawn(g *ast.GoStmt) {
	sp := &Spawn{Pos: g.Pos(), set: w.set, What: "func literal"}
	if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
		// Signals lexically in the literal body, and the calls it makes.
		inner := &walker{fn: w.fn, resolve: w.resolve, set: w.set}
		inner.sum = &Summary{Fn: w.fn.Obj, Decl: w.fn.Decl}
		inner.seenCall = make(map[*types.Func]bool)
		inner.walk(lit.Body)
		sp.Direct = inner.sum.Direct
		sp.Callees = inner.sum.calls
	} else {
		sp.Callees = w.resolve(w.fn, g.Call)
		if len(sp.Callees) > 0 {
			sp.What = funcDisplayName(sp.Callees[0])
		} else if name := exprString(g.Call.Fun); name != "" {
			sp.What = name
		}
	}
	w.sum.Spawns = append(w.sum.Spawns, sp)
}

// composite flags heap-bound composite literals: map and slice literals
// always, others only when their address is the value produced (&T{}).
// Value struct/array literals are register/stack material and stay free.
func (w *walker) composite(lit *ast.CompositeLit) {
	switch w.typeOf(lit).Underlying().(type) {
	case *types.Map, *types.Slice:
		w.alloc(lit.Pos(), AllocComposite, typeString(w.typeOf(lit)))
	}
}

// call classifies one call expression: builtins, conversions, stdlib
// denylist, boxing of arguments, synchronous call edges, and opaque
// function-value calls.
func (w *walker) call(call *ast.CallExpr) {
	fun := ast.Unparen(call.Fun)
	if tv, ok := w.fn.Info.Types[fun]; ok && tv.IsType() {
		// Conversion: only string<->[]byte/[]rune materialize memory.
		if convAllocates(tv.Type, w.argType(call)) {
			w.alloc(call.Pos(), AllocConvert, typeString(tv.Type))
		}
		return
	}
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := w.fn.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				w.alloc(call.Pos(), AllocMake, "")
			case "new":
				w.alloc(call.Pos(), AllocNew, "")
			case "append":
				w.alloc(call.Pos(), AllocAppend, "")
			case "close":
				w.signal(SigChanClose)
			}
			return
		}
	}

	callees := w.resolve(w.fn, call)
	for _, callee := range callees {
		w.noteCallee(call, callee)
	}
	if len(callees) == 0 && !w.isDirectLocalLitCall(fun) {
		// A call through a function value the resolver cannot see:
		// parameters, struct fields, map entries. Charge it as opaque so
		// allochot can refuse to certify the path.
		if _, isLit := fun.(*ast.FuncLit); !isLit {
			if _, isSig := w.typeOf(fun).Underlying().(*types.Signature); isSig {
				w.alloc(call.Pos(), AllocOpaqueCall, exprString(fun))
			}
		}
	}
	w.boxedArgs(call)
}

// noteCallee records the classification of one resolved callee: alloc
// denylist, termination signals, synchronous call edge.
func (w *walker) noteCallee(call *ast.CallExpr, callee *types.Func) {
	if pkg := callee.Pkg(); pkg != nil {
		path := pkg.Path()
		if allocStdlib(path, callee.Name()) {
			w.alloc(call.Pos(), AllocCall, path+"."+callee.Name())
		}
		if path == "internal/par" || strings.HasSuffix(path, "/internal/par") {
			w.signal(SigParPool)
		}
	}
	if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil {
		switch recvTypeName(sig.Recv().Type()) {
		case "sync.WaitGroup":
			if callee.Name() == "Done" || callee.Name() == "Wait" {
				w.signal(SigWaitGroup)
			}
		case "context.Context":
			if callee.Name() == "Done" || callee.Name() == "Err" || callee.Name() == "Deadline" {
				w.signal(SigContext)
			}
		case "sync.Mutex", "sync.RWMutex":
			if callee.Name() == "Lock" || callee.Name() == "RLock" {
				w.noteLock(call)
			}
		}
		w.noteAtomicMethod(call, callee, sig)
	}
	// Interface methods: a call on a context.Context interface value has
	// no concrete receiver type above; catch it by package.
	if pkg := callee.Pkg(); pkg != nil && pkg.Path() == "context" {
		if callee.Name() == "Done" || callee.Name() == "Err" || callee.Name() == "Deadline" {
			w.signal(SigContext)
		}
	}
	if w.goDepth == 0 && !w.seenCall[callee] {
		w.seenCall[callee] = true
		w.sum.calls = append(w.sum.calls, callee)
	}
	w.noteAtomicAddr(call, callee)
}

// noteLock records the mutex field locked by a m.mu.Lock() chain.
func (w *walker) noteLock(call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	if inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr); ok {
		if s, ok := w.fn.Info.Selections[inner]; ok && s.Kind() == types.FieldVal {
			if v, ok := s.Obj().(*types.Var); ok {
				w.sum.Locks = append(w.sum.Locks, v)
			}
		}
	}
}

// noteAtomicAddr records old-style sync/atomic calls whose first
// argument takes a struct field's address: atomic.AddInt64(&s.f, 1).
func (w *walker) noteAtomicAddr(call *ast.CallExpr, callee *types.Func) {
	pkg := callee.Pkg()
	if pkg == nil || pkg.Path() != "sync/atomic" || len(call.Args) == 0 {
		return
	}
	u, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
	if !ok || u.Op != token.AND {
		return
	}
	if f := w.fieldOf(u.X); f != nil {
		w.sum.Atomics = append(w.sum.Atomics, AtomicOp{
			Field: f, Pos: call.Pos(), Op: "atomic." + callee.Name(), ByAddress: true,
		})
	}
}

// noteAtomicMethod records method calls on atomic.X-typed fields
// (s.f.Load()): intrinsically safe, kept as "atomics touched" facts.
func (w *walker) noteAtomicMethod(call *ast.CallExpr, callee *types.Func, sig *types.Signature) {
	name := recvTypeName(sig.Recv().Type())
	if !strings.HasPrefix(name, "atomic.") {
		return
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	if f := w.fieldOf(sel.X); f != nil {
		w.sum.Atomics = append(w.sum.Atomics, AtomicOp{
			Field: f, Pos: call.Pos(), Op: "(" + name + ")." + callee.Name(),
		})
	}
}

// fieldOf resolves expr to the struct field it selects, or nil.
func (w *walker) fieldOf(expr ast.Expr) *types.Var {
	sel, ok := ast.Unparen(expr).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	s, ok := w.fn.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	v, _ := s.Obj().(*types.Var)
	return v
}

// boxedArgs flags concrete values boxed into interface-typed parameters.
func (w *walker) boxedArgs(call *ast.CallExpr) {
	sig, ok := w.typeOf(call.Fun).Underlying().(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		var target types.Type
		switch {
		case sig.Variadic() && i >= sig.Params().Len()-1:
			if call.Ellipsis.IsValid() {
				continue // s... passes the slice through, no boxing
			}
			last := sig.Params().At(sig.Params().Len() - 1).Type()
			if sl, ok := last.(*types.Slice); ok {
				target = sl.Elem()
			}
		case i < sig.Params().Len():
			target = sig.Params().At(i).Type()
		}
		if w.boxes(arg, target) {
			w.alloc(arg.Pos(), AllocBoxing, typeString(w.typeOf(arg)))
		}
	}
}

// boxes reports whether assigning arg to a target of type target boxes a
// concrete value into an interface.
func (w *walker) boxes(arg ast.Expr, target types.Type) bool {
	if target == nil {
		return false
	}
	if _, ok := target.Underlying().(*types.Interface); !ok {
		return false
	}
	at := w.typeOf(arg)
	if at == nil {
		return false
	}
	if _, ok := at.Underlying().(*types.Interface); ok {
		return false // interface-to-interface, no box
	}
	if b, ok := at.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	if _, ok := at.Underlying().(*types.Pointer); ok {
		return false // pointers box without copying the pointee
	}
	return !w.isConstant(arg)
}

// selector flags boxing through plain assignment to interface-typed
// variables: `var x any = v` and `x = v` are handled by the statement
// walks below; method values need nothing here. (Retained as a hook.)
func (w *walker) selector(*ast.SelectorExpr) {}

func (w *walker) typeOf(e ast.Expr) types.Type {
	if tv, ok := w.fn.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

func (w *walker) argType(call *ast.CallExpr) types.Type {
	if len(call.Args) != 1 {
		return nil
	}
	return w.typeOf(call.Args[0])
}

func (w *walker) isConstant(e ast.Expr) bool {
	tv, ok := w.fn.Info.Types[e]
	return ok && tv.Value != nil
}

// isDirectLocalLitCall reports whether fun is an identifier bound to a
// function literal declared in this function and only ever called — the
// `consider := func(...) {...}; consider(k)` pattern the hot search
// uses, which the compiler keeps on the stack.
func (w *walker) isDirectLocalLitCall(fun ast.Expr) bool {
	id, ok := fun.(*ast.Ident)
	if !ok {
		return false
	}
	obj, ok := w.fn.Info.Uses[id].(*types.Var)
	if !ok {
		return false
	}
	return w.set.lits(w.fn).callOnly[obj]
}

// --- shared helpers ---

// convAllocates reports whether converting from -> to copies memory:
// string <-> []byte / []rune in either direction.
func convAllocates(to, from types.Type) bool {
	if to == nil || from == nil {
		return false
	}
	return (isString(to) && isByteOrRuneSlice(from)) || (isByteOrRuneSlice(to) && isString(from))
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// allocStdlib is the audited denylist of standard-library calls that
// allocate on every invocation. Stdlib calls outside it are assumed
// allocation-free on the hot path (math, sort.Search, atomic methods);
// the list errs toward the formatting/string-building families the hot
// paths must never touch.
func allocStdlib(path, name string) bool {
	switch path {
	case "fmt":
		return true
	case "errors":
		return name == "New" || name == "Join"
	case "strings":
		switch name {
		case "Join", "Repeat", "Replace", "ReplaceAll", "Split", "SplitN",
			"SplitAfter", "Fields", "Map", "ToUpper", "ToLower", "Clone", "Title":
			return true
		}
	case "strconv":
		switch name {
		case "Itoa", "FormatInt", "FormatUint", "FormatFloat", "FormatBool", "Quote":
			return true
		}
	case "sort":
		switch name {
		case "Slice", "SliceStable", "Sort", "Stable", "Strings", "Ints", "Float64s":
			return true
		}
	}
	return false
}

// recvTypeName renders a receiver type as "pkg.Name", peeling pointers.
func recvTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Name() + "." + obj.Name()
}

// funcDisplayName renders a function for diagnostics: "pkg.Func" or
// "(pkg.T).Method".
func funcDisplayName(fn *types.Func) string {
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		return "(" + recvTypeName(sig.Recv().Type()) + ")." + fn.Name()
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}

// exprString renders simple call targets (idents and selector chains)
// for diagnostics.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		if base := exprString(e.X); base != "" {
			return base + "." + e.Sel.Name
		}
		return e.Sel.Name
	case *ast.ParenExpr:
		return exprString(e.X)
	}
	return ""
}

func typeString(t types.Type) string {
	if t == nil {
		return ""
	}
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}
