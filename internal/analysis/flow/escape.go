package flow

import (
	"go/ast"
	"go/types"
	"strings"
)

// This file computes the ParamEscapes facts: a per-function alias graph
// whose nodes are the function's parameters and local variables, with
// "flows-to" edges for assignments, sink marks for stores that outlive
// the frame (returns, channel sends, writes through caller-visible
// memory, captures by escaping closures, go/defer arguments), and
// call-argument constraints resolved against callee summaries during a
// module-wide fixpoint. The model is deliberately coarse — any aliasing
// mention of a variable in a sink context escapes it — trading precision
// for a few hundred lines; DESIGN.md §13 records the known
// over-approximations.

// litFacts classifies the function literals of one declaration: which
// escape (their captures outlive the frame) and which locals are bound
// to a literal used only in call position (the `consider := func(...)`
// pattern the compiler keeps on the stack).
type litFacts struct {
	escaping map[*ast.FuncLit]bool
	callOnly map[*types.Var]bool
}

// lits returns the (cached) literal classification for fn's declaration.
func (s *Set) lits(fn Func) *litFacts {
	if f, ok := s.lit[fn.Decl]; ok {
		return f
	}
	f := computeLitFacts(fn)
	s.lit[fn.Decl] = f
	return f
}

func computeLitFacts(fn Func) *litFacts {
	f := &litFacts{
		escaping: make(map[*ast.FuncLit]bool),
		callOnly: make(map[*types.Var]bool),
	}
	parent := make(map[ast.Node]ast.Node)
	var lits []*ast.FuncLit
	var stack []ast.Node
	ast.Inspect(fn.Decl, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parent[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		if lit, ok := n.(*ast.FuncLit); ok {
			lits = append(lits, lit)
		}
		return true
	})
	for _, lit := range lits {
		f.escaping[lit] = true
		p := parent[lit]
		if call, ok := p.(*ast.CallExpr); ok && call.Fun == lit {
			// Immediately invoked: the frame is live for the whole call,
			// so captures stay on the stack — unless the invocation rides
			// a new goroutine.
			if _, onGoroutine := parent[call].(*ast.GoStmt); !onGoroutine {
				f.escaping[lit] = false
			}
			continue
		}
		if v := boundLocal(fn, lit, p); v != nil && callOnlyUses(fn, v, parent) {
			f.escaping[lit] = false
			f.callOnly[v] = true
		}
	}
	return f
}

// boundLocal returns the local variable a literal is bound to by its
// parent statement (`v := func(){}`, `v = func(){}`, `var v = func(){}`),
// or nil.
func boundLocal(fn Func, lit *ast.FuncLit, parent ast.Node) *types.Var {
	switch p := parent.(type) {
	case *ast.AssignStmt:
		if len(p.Lhs) != len(p.Rhs) {
			return nil
		}
		for i, rhs := range p.Rhs {
			if rhs != lit {
				continue
			}
			id, ok := p.Lhs[i].(*ast.Ident)
			if !ok {
				return nil
			}
			v, _ := objOf(fn, id).(*types.Var)
			return v
		}
	case *ast.ValueSpec:
		for i, rhs := range p.Values {
			if rhs != lit || i >= len(p.Names) {
				continue
			}
			v, _ := fn.Info.Defs[p.Names[i]].(*types.Var)
			return v
		}
	}
	return nil
}

// callOnlyUses reports whether every use of v inside fn is as the
// function being called (or as the left-hand side of a literal
// rebinding) — the shape that keeps a closure non-escaping.
func callOnlyUses(fn Func, v *types.Var, parent map[ast.Node]ast.Node) bool {
	ok := true
	ast.Inspect(fn.Decl, func(n ast.Node) bool {
		id, isIdent := n.(*ast.Ident)
		if !isIdent || !ok {
			return ok
		}
		if fn.Info.Uses[id] != v && fn.Info.Defs[id] != types.Object(v) {
			return true
		}
		switch p := parent[id].(type) {
		case *ast.CallExpr:
			if p.Fun == id {
				return true
			}
		case *ast.AssignStmt:
			for i, lhs := range p.Lhs {
				if lhs == id && i < len(p.Rhs) {
					if _, isLit := p.Rhs[i].(*ast.FuncLit); isLit {
						return true
					}
				}
			}
		case *ast.ValueSpec:
			return true // the declaration itself
		}
		ok = false
		return false
	})
	return ok
}

// --- escape graph construction ---

// escCall is a "this variable was passed as callee's idx-th parameter"
// constraint, resolved against the callee's ParamEscapes during the
// fixpoint. idx counts the receiver first for methods.
type escCall struct {
	callee *types.Func
	idx    int
}

type escNode struct {
	sink    bool
	flowsTo []types.Object
	calls   []escCall
}

// buildEscapes constructs fn's escape graph onto sum. The fixpoint that
// fills ParamEscapes runs later, once every function has a graph.
func buildEscapes(fn Func, sum *Summary, set *Set, resolve func(Func, *ast.CallExpr) []*types.Func) {
	sig, ok := fn.Obj.Type().(*types.Signature)
	if !ok {
		return
	}
	if r := sig.Recv(); r != nil {
		sum.escParams = append(sum.escParams, r)
	}
	for i := 0; i < sig.Params().Len(); i++ {
		sum.escParams = append(sum.escParams, sig.Params().At(i))
	}
	sum.ParamEscapes = make([]bool, len(sum.escParams))
	sum.escNodes = make(map[types.Object]*escNode)
	b := &escBuilder{fn: fn, sum: sum, resolve: resolve, facts: set.lits(fn)}
	b.calls()
	b.statements()
	b.closures()
}

type escBuilder struct {
	fn      Func
	sum     *Summary
	resolve func(Func, *ast.CallExpr) []*types.Func
	facts   *litFacts
}

func (b *escBuilder) node(obj types.Object) *escNode {
	n := b.sum.escNodes[obj]
	if n == nil {
		n = &escNode{}
		b.sum.escNodes[obj] = n
	}
	return n
}

func (b *escBuilder) sinkAll(expr ast.Expr) {
	// A value whose type carries no references (an int from `return *p`,
	// a len() result) cannot leak what it was read from, so aliases
	// under it stay local.
	if tv, ok := b.fn.Info.Types[expr]; ok && tv.Type != nil && !pointerLike(tv.Type) {
		return
	}
	for _, obj := range b.aliasing(expr) {
		b.node(obj).sink = true
	}
}

func (b *escBuilder) edgeAll(expr ast.Expr, target types.Object) {
	for _, obj := range b.aliasing(expr) {
		if obj == target {
			continue
		}
		b.node(obj).flowsTo = append(b.node(obj).flowsTo, target)
	}
}

// calls is pass A: every call expression contributes either callee
// parameter constraints (resolved callees) or outright sinks (calls
// through opaque function values).
func (b *escBuilder) calls() {
	ast.Inspect(b.fn.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fun := ast.Unparen(call.Fun)
		if tv, ok := b.fn.Info.Types[fun]; ok && tv.IsType() {
			return true // conversion
		}
		if id, ok := fun.(*ast.Ident); ok {
			if _, ok := b.fn.Info.Uses[id].(*types.Builtin); ok {
				return true // append/copy alias into their result; pass B covers it
			}
		}
		callees := b.resolve(b.fn, call)
		if len(callees) == 0 {
			if _, isSig := typeOfIn(b.fn, fun).(*types.Signature); isSig {
				for _, arg := range call.Args {
					b.sinkAll(arg)
				}
			}
			return true
		}
		for _, callee := range callees {
			b.constrain(call, fun, callee)
		}
		return true
	})
}

// constrain adds the (callee, index) constraints for one resolved call.
func (b *escBuilder) constrain(call *ast.CallExpr, fun ast.Expr, callee *types.Func) {
	if safeCallee(callee) {
		return
	}
	csig, ok := callee.Type().(*types.Signature)
	if !ok {
		return
	}
	recvOff := 0
	if csig.Recv() != nil {
		recvOff = 1
		if sel, ok := fun.(*ast.SelectorExpr); ok {
			b.constrainExpr(sel.X, callee, 0)
		}
	}
	total := recvOff + csig.Params().Len()
	for i, arg := range call.Args {
		idx := recvOff + i
		if csig.Variadic() && idx >= total-1 {
			idx = total - 1
		}
		if idx < total {
			b.constrainExpr(arg, callee, idx)
		}
	}
}

func (b *escBuilder) constrainExpr(expr ast.Expr, callee *types.Func, idx int) {
	for _, obj := range b.aliasing(expr) {
		b.node(obj).calls = append(b.node(obj).calls, escCall{callee: callee, idx: idx})
	}
}

// statements is pass B: assignments build flow edges, returns/sends and
// stores through caller-visible memory are sinks, go/defer arguments
// outlive the statement.
func (b *escBuilder) statements() {
	ast.Inspect(b.fn.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				rhs := n.Rhs[0]
				if len(n.Rhs) == len(n.Lhs) {
					rhs = n.Rhs[i]
				}
				b.assign(lhs, rhs)
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if i < len(n.Values) {
					if obj := b.fn.Info.Defs[name]; obj != nil && name.Name != "_" {
						b.edgeAll(n.Values[i], obj)
					}
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				b.sinkAll(res)
			}
		case *ast.SendStmt:
			b.sinkAll(n.Value)
		case *ast.GoStmt:
			b.lateCall(n.Call)
		case *ast.DeferStmt:
			b.lateCall(n.Call)
		}
		return true
	})
}

// lateCall sinks the arguments (and method receiver) of a call that runs
// after the statement completes — go and defer.
func (b *escBuilder) lateCall(call *ast.CallExpr) {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		b.sinkAll(sel.X)
	}
	for _, arg := range call.Args {
		b.sinkAll(arg)
	}
}

// assign classifies one lhs := rhs pair.
func (b *escBuilder) assign(lhs, rhs ast.Expr) {
	lhs = ast.Unparen(lhs)
	if id, ok := lhs.(*ast.Ident); ok {
		if id.Name == "_" {
			return
		}
		obj := objOf(b.fn, id)
		if b.isLocalOrParam(obj) {
			b.edgeAll(rhs, obj)
			return
		}
		// Package-level (or unresolved) variable: the value outlives us.
		b.sinkAll(rhs)
		return
	}
	// Store through a selector/index/star chain: if the chain is rooted
	// at a local, the value lives exactly as long as that local does; any
	// other root (parameter memory, globals, unresolvable) is
	// caller-visible, so the value escapes.
	root := rootObj(b.fn, lhs)
	if b.isLocalOrParam(root) && !b.isParam(root) {
		b.edgeAll(rhs, root)
		return
	}
	b.sinkAll(rhs)
}

// closures is pass C: every variable an escaping literal captures is
// retained by the closure and escapes with it.
func (b *escBuilder) closures() {
	ast.Inspect(b.fn.Decl.Body, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok || !b.facts.escaping[lit] {
			return true
		}
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := b.fn.Info.Uses[id]; b.isLocalOrParam(obj) && obj.Pos() < lit.Pos() {
					b.node(obj).sink = true
				}
			}
			return true
		})
		return true
	})
}

// aliasing collects the local/param variables an expression may alias:
// identifiers outside call subtrees (call retention is pass A's job),
// descending into conversions, append/copy, composite literals and
// address-of, skipping function literal bodies.
func (b *escBuilder) aliasing(expr ast.Expr) []types.Object {
	var out []types.Object
	ast.Inspect(expr, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			fun := ast.Unparen(n.Fun)
			if tv, ok := b.fn.Info.Types[fun]; ok && tv.IsType() {
				return true // conversion: result aliases the operand
			}
			if id, ok := fun.(*ast.Ident); ok {
				if bi, ok := b.fn.Info.Uses[id].(*types.Builtin); ok {
					if bi.Name() == "append" || bi.Name() == "copy" {
						return true // result/dst aliases the arguments
					}
				}
			}
			return false
		case *ast.Ident:
			if obj := objOf(b.fn, n); b.isLocalOrParam(obj) {
				out = append(out, obj)
			}
		}
		return true
	})
	return out
}

func (b *escBuilder) isLocalOrParam(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return false
	}
	return v.Pos() >= b.fn.Decl.Pos() && v.Pos() <= b.fn.Decl.End()
}

func (b *escBuilder) isParam(obj types.Object) bool {
	for _, p := range b.sum.escParams {
		if p == obj {
			return true
		}
	}
	return false
}

// --- fixpoint ---

// escapeFixpoint re-evaluates one function's escape set against the
// current global state, returning whether its ParamEscapes changed.
func escapeFixpoint(s *Set, sum *Summary) bool {
	if sum.escaped == nil {
		sum.escaped = make(map[types.Object]bool)
	}
	for again := true; again; {
		again = false
		for obj, n := range sum.escNodes {
			if sum.escaped[obj] {
				continue
			}
			if escapes(s, sum, n) {
				sum.escaped[obj] = true
				again = true
			}
		}
	}
	changed := false
	for i, p := range sum.escParams {
		v := pointerLike(p.Type()) && sum.escaped[p]
		if v != sum.ParamEscapes[i] {
			sum.ParamEscapes[i] = v
			changed = true
		}
	}
	return changed
}

func escapes(s *Set, sum *Summary, n *escNode) bool {
	if n.sink {
		return true
	}
	for _, t := range n.flowsTo {
		if sum.escaped[t] {
			return true
		}
	}
	for _, c := range n.calls {
		cs := s.summaries[c.callee]
		if cs == nil {
			return true // outside the module: assume it retains
		}
		if c.idx < len(cs.ParamEscapes) && cs.ParamEscapes[c.idx] {
			return true
		}
	}
	return false
}

// propagateEscapes iterates every function's escape fixpoint until the
// module is globally stable. Escape bits only ever turn on, so the loop
// terminates.
func propagateEscapes(s *Set) {
	for changed := true; changed; {
		changed = false
		for _, sum := range s.order {
			if escapeFixpoint(s, sum) {
				changed = true
			}
		}
	}
}

// --- helpers ---

func objOf(fn Func, id *ast.Ident) types.Object {
	if o := fn.Info.Uses[id]; o != nil {
		return o
	}
	return fn.Info.Defs[id]
}

func typeOfIn(fn Func, e ast.Expr) types.Type {
	if tv, ok := fn.Info.Types[e]; ok && tv.Type != nil {
		return tv.Type.Underlying()
	}
	return nil
}

// rootObj peels selector/index/star/slice chains down to the root
// identifier's object, or nil.
func rootObj(fn Func, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.TypeAssertExpr:
			e = x.X
		case *ast.Ident:
			return objOf(fn, x)
		default:
			return nil
		}
	}
}

// pointerLike reports whether values of type t carry references whose
// pointees can outlive a frame. Strings are immutable and excluded.
func pointerLike(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Signature, *types.Interface:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

// safeCallee is the audited allowlist of external functions known not to
// retain their arguments; everything else outside the module is assumed
// to.
func safeCallee(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	switch pkg.Path() {
	case "math", "math/bits":
		return true
	case "sort":
		return strings.HasPrefix(fn.Name(), "Search") || strings.HasSuffix(fn.Name(), "AreSorted") ||
			strings.HasPrefix(fn.Name(), "IsSorted") || fn.Name() == "SliceIsSorted"
	case "strings":
		switch fn.Name() {
		case "HasPrefix", "HasSuffix", "Contains", "Compare", "EqualFold",
			"Index", "IndexByte", "LastIndex", "Count":
			return true
		}
	case "bytes":
		return fn.Name() == "Equal" || fn.Name() == "Compare" || fn.Name() == "Contains"
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		switch recvTypeName(sig.Recv().Type()) {
		case "sync.Mutex", "sync.RWMutex", "sync.WaitGroup", "sync.Once":
			return true
		}
		if strings.HasPrefix(recvTypeName(sig.Recv().Type()), "atomic.") {
			return true
		}
	}
	return false
}
