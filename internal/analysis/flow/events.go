// Event extraction: the concurrency skeleton of one function, built on
// the same typed ASTs the summary walker uses. Where Summary reduces a
// body to bit-level facts (signals, allocs), EventsOf keeps the
// structure the model checker in internal/analysis/conc needs: channel
// create/send/recv/close with capacities, select arms with their
// bodies, mutex and RWMutex acquire/release, WaitGroup Add/Done/Wait,
// context-cancel edges (WithCancel binds the cancel func to its
// context; ctx.Done() is a receive on it), goroutine spawns with their
// argument bindings, and resolved synchronous calls for inlining.
//
// The extraction is deliberately control-flow-light: if/else and
// switch become nondeterministic choices, loops contribute their body
// exactly once (a bounded checker cannot unwind unbounded iteration,
// and one iteration already exhibits every blocking relationship the
// body can enter), and `return` is kept as an explicit event so the
// checker can route it through the deferred release events. The
// soundness trade-offs are documented in DESIGN.md §16.
package flow

import (
	"go/ast"
	"go/token"
	"go/types"
)

// EventKind classifies one concurrency event.
type EventKind int

// The event kinds EventsOf produces.
const (
	EvMakeChan EventKind = iota + 1 // make(chan T, cap) or context.WithCancel
	EvSend                          // ch <- v
	EvRecv                          // <-ch (incl. <-ctx.Done())
	EvClose                         // close(ch) or cancel()
	EvLock                          // mu.Lock()
	EvUnlock                        // mu.Unlock()
	EvRLock                         // mu.RLock()
	EvRUnlock                       // mu.RUnlock()
	EvWgAdd                         // wg.Add(n)
	EvWgDone                        // wg.Done()
	EvWgWait                        // wg.Wait()
	EvSpawn                         // go f(...) / go func(){...}()
	EvSelect                        // select statement
	EvChoice                        // nondeterministic branch (if/switch)
	EvCall                          // resolved synchronous call, for inlining
	EvReturn                        // return: jump to the deferred events
	EvEscape                        // a channel leaves the function's view
)

// Event is one node of a function's concurrency skeleton.
type Event struct {
	Kind EventKind
	Pos  token.Pos
	// Obj identifies the channel/mutex/WaitGroup/context acted on: a
	// *types.Var (local, param or struct field). nil means the checker
	// cannot name the object (a call result, a map entry) and must treat
	// the operation as externally satisfiable.
	Obj  types.Object
	What string // display name of the object or callee
	// Delta is the make(chan) capacity or the wg.Add delta; -1 when it
	// is not a compile-time constant.
	Delta int
	Arms  []SelectArm // EvSelect
	Alts  [][]Event   // EvChoice: alternative continuations
	Spawn *SpawnInfo  // EvSpawn
	Call  *CallInfo   // EvCall
}

// SelectArm is one arm of a select: its communication (nil for the
// default arm) and the events of its body.
type SelectArm struct {
	Comm *Event
	Body []Event
}

// SpawnInfo describes one go statement: either a literal body (with the
// literal's parameter objects, for binding the call arguments) or the
// resolved named callees.
type SpawnInfo struct {
	Lit       *FnEvents
	LitParams []types.Object
	Callees   []*types.Func
	Args      []types.Object // caller-side sync objects per argument (nil entries ok)
	What      string
}

// CallInfo describes one resolved synchronous call for inlining.
type CallInfo struct {
	Callees []*types.Func
	Args    []types.Object
}

// FnEvents is one function's extracted skeleton. Deferred holds the
// sync-relevant deferred calls (unlocks, closes, wg.Done, cancel) in
// LIFO execution order; the checker runs them at every exit.
type FnEvents struct {
	Body     []Event
	Deferred []Event
	Name     string
}

// HasSpawn reports whether the skeleton contains a go statement outside
// spawned bodies — the roots the model checker explores.
func (fe *FnEvents) HasSpawn() bool {
	return eventsHaveSpawn(fe.Body) || eventsHaveSpawn(fe.Deferred)
}

func eventsHaveSpawn(evs []Event) bool {
	for i := range evs {
		e := &evs[i]
		if e.Kind == EvSpawn {
			return true
		}
		for _, alt := range e.Alts {
			if eventsHaveSpawn(alt) {
				return true
			}
		}
		for _, arm := range e.Arms {
			if eventsHaveSpawn(arm.Body) {
				return true
			}
		}
	}
	return false
}

// EventsOf extracts fn's concurrency skeleton. resolve is the same
// callee resolver Build takes; it may be called for any call expression
// in the body.
func EventsOf(fn Func, resolve func(Func, *ast.CallExpr) []*types.Func) *FnEvents {
	if fn.Decl == nil || fn.Decl.Body == nil {
		return &FnEvents{}
	}
	w := &eventWalker{fn: fn, resolve: resolve, cancelOf: map[types.Object]types.Object{}}
	body := w.stmts(fn.Decl.Body.List)
	name := fn.Decl.Name.Name
	if fn.Obj != nil {
		name = funcDisplayName(fn.Obj)
	}
	return &FnEvents{Body: body, Deferred: reverseEvents(w.deferred), Name: name}
}

type eventWalker struct {
	fn       Func
	resolve  func(Func, *ast.CallExpr) []*types.Func
	deferred []Event
	// cancelOf maps a context.CancelFunc variable to the context object
	// its WithCancel/WithTimeout call produced, so cancel() becomes an
	// EvClose on the context.
	cancelOf map[types.Object]types.Object
}

func reverseEvents(evs []Event) []Event {
	out := make([]Event, 0, len(evs))
	for i := len(evs) - 1; i >= 0; i-- {
		out = append(out, evs[i])
	}
	return out
}

func (w *eventWalker) stmts(list []ast.Stmt) []Event {
	var out []Event
	for _, s := range list {
		out = append(out, w.stmt(s)...)
	}
	return out
}

// stmt extracts the events of one statement, in evaluation order.
func (w *eventWalker) stmt(s ast.Stmt) []Event {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return w.stmts(s.List)
	case *ast.ExprStmt:
		return w.expr(s.X)
	case *ast.SendStmt:
		evs := w.expr(s.Value)
		obj := w.syncObj(s.Chan)
		return append(evs, Event{Kind: EvSend, Pos: s.Arrow, Obj: obj, What: exprString(s.Chan)})
	case *ast.IncDecStmt:
		return w.expr(s.X)
	case *ast.AssignStmt:
		return w.assign(s)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			var evs []Event
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						evs = append(evs, w.expr(v)...)
					}
				}
			}
			return evs
		}
		return nil
	case *ast.ReturnStmt:
		var evs []Event
		for _, res := range s.Results {
			evs = append(evs, w.expr(res)...)
			evs = append(evs, w.escape(res)...)
		}
		return append(evs, Event{Kind: EvReturn, Pos: s.Pos()})
	case *ast.IfStmt:
		var evs []Event
		if s.Init != nil {
			evs = append(evs, w.stmt(s.Init)...)
		}
		evs = append(evs, w.expr(s.Cond)...)
		alts := [][]Event{w.stmts(s.Body.List)}
		if s.Else != nil {
			alts = append(alts, w.stmt(s.Else))
		} else {
			alts = append(alts, nil)
		}
		return append(evs, Event{Kind: EvChoice, Pos: s.Pos(), Alts: alts})
	case *ast.ForStmt:
		// One iteration: a bounded checker cannot unwind unbounded loops,
		// and one pass through the body already exhibits every blocking
		// relationship the loop can enter (DESIGN.md §16).
		var evs []Event
		if s.Init != nil {
			evs = append(evs, w.stmt(s.Init)...)
		}
		if s.Cond != nil {
			evs = append(evs, w.expr(s.Cond)...)
		}
		evs = append(evs, w.stmts(s.Body.List)...)
		if s.Post != nil {
			evs = append(evs, w.stmt(s.Post)...)
		}
		return evs
	case *ast.RangeStmt:
		var evs []Event
		evs = append(evs, w.expr(s.X)...)
		if _, isChan := w.typeOf(s.X).(*types.Chan); isChan {
			evs = append(evs, Event{Kind: EvRecv, Pos: s.For, Obj: w.syncObj(s.X), What: exprString(s.X)})
		}
		return append(evs, w.stmts(s.Body.List)...)
	case *ast.SelectStmt:
		return []Event{w.selectStmt(s)}
	case *ast.SwitchStmt:
		var evs []Event
		if s.Init != nil {
			evs = append(evs, w.stmt(s.Init)...)
		}
		if s.Tag != nil {
			evs = append(evs, w.expr(s.Tag)...)
		}
		return append(evs, w.caseChoice(s.Pos(), s.Body.List))
	case *ast.TypeSwitchStmt:
		var evs []Event
		if s.Init != nil {
			evs = append(evs, w.stmt(s.Init)...)
		}
		return append(evs, w.caseChoice(s.Pos(), s.Body.List))
	case *ast.GoStmt:
		return []Event{w.goStmt(s)}
	case *ast.DeferStmt:
		// Only sync-relevant deferred calls are modeled; they run (LIFO)
		// at every exit. Conditional defers are approximated as
		// unconditional — a spurious unlock/close at exit is the benign
		// direction for deadlock detection.
		if evs := w.deferEvents(s.Call); len(evs) > 0 {
			w.deferred = append(w.deferred, evs...)
		}
		return nil
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt)
	}
	// break/continue/goto/empty: no events (loops run once anyway).
	return nil
}

// caseChoice turns switch case bodies into one nondeterministic choice.
func (w *eventWalker) caseChoice(pos token.Pos, clauses []ast.Stmt) Event {
	alts := [][]Event{nil} // "no case matched" is always an alternative
	for _, c := range clauses {
		if cc, ok := c.(*ast.CaseClause); ok {
			alts = append(alts, w.stmts(cc.Body))
		}
	}
	return Event{Kind: EvChoice, Pos: pos, Alts: alts}
}

func (w *eventWalker) selectStmt(s *ast.SelectStmt) Event {
	ev := Event{Kind: EvSelect, Pos: s.Select}
	for _, c := range s.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		arm := SelectArm{Body: w.stmts(cc.Body)}
		switch comm := cc.Comm.(type) {
		case *ast.SendStmt:
			arm.Comm = &Event{Kind: EvSend, Pos: comm.Arrow, Obj: w.syncObj(comm.Chan), What: exprString(comm.Chan)}
		case *ast.ExprStmt:
			if recv := w.recvEvent(comm.X); recv != nil {
				arm.Comm = recv
			}
		case *ast.AssignStmt:
			if len(comm.Rhs) == 1 {
				if recv := w.recvEvent(comm.Rhs[0]); recv != nil {
					arm.Comm = recv
				}
			}
		case nil:
			// default arm: Comm stays nil
		}
		ev.Arms = append(ev.Arms, arm)
	}
	return ev
}

// assign handles the special right-hand sides: make(chan), channel
// receives, and context.WithCancel families.
func (w *eventWalker) assign(s *ast.AssignStmt) []Event {
	var evs []Event
	for _, rhs := range s.Rhs {
		evs = append(evs, w.expr(rhs)...)
		// Aliasing a channel (y := ch, s.ch = ch) takes it out of the
		// closed-world model: the alias's operations are invisible here.
		evs = append(evs, w.escape(rhs)...)
	}
	if len(s.Rhs) == 1 {
		if call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr); ok {
			// ch := make(chan T[, cap])
			if w.isMakeChan(call) && len(s.Lhs) == 1 {
				if obj := w.defOrUse(s.Lhs[0]); obj != nil {
					evs = append(evs, Event{
						Kind: EvMakeChan, Pos: call.Pos(), Obj: obj,
						What: exprString(s.Lhs[0]), Delta: w.chanCap(call),
					})
				}
			}
			// ctx, cancel := context.WithCancel(parent) (and Timeout/Deadline):
			// model ctx as a channel the cancel func closes.
			if w.isCtxWithCancel(call) && len(s.Lhs) == 2 {
				ctxObj := w.defOrUse(s.Lhs[0])
				cancelObj := w.defOrUse(s.Lhs[1])
				if ctxObj != nil {
					evs = append(evs, Event{
						Kind: EvMakeChan, Pos: call.Pos(), Obj: ctxObj,
						What: exprString(s.Lhs[0]), Delta: 0,
					})
					if cancelObj != nil {
						w.cancelOf[cancelObj] = ctxObj
					}
				}
			}
		}
	}
	return evs
}

// expr extracts events from one expression in evaluation order:
// receives, closes, mutex/WaitGroup calls, spawns nested in arguments,
// and resolved calls for inlining.
func (w *eventWalker) expr(e ast.Expr) []Event {
	switch e := ast.Unparen(e).(type) {
	case *ast.UnaryExpr:
		if e.Op == token.ARROW {
			evs := w.expr(e.X)
			if recv := w.recvEvent(e); recv != nil {
				return append(evs, *recv)
			}
			return evs
		}
		return w.expr(e.X)
	case *ast.BinaryExpr:
		return append(w.expr(e.X), w.expr(e.Y)...)
	case *ast.CallExpr:
		return w.callExpr(e)
	case *ast.StarExpr:
		return w.expr(e.X)
	case *ast.SelectorExpr:
		return w.expr(e.X)
	case *ast.IndexExpr:
		return append(w.expr(e.X), w.expr(e.Index)...)
	case *ast.CompositeLit:
		var evs []Event
		for _, el := range e.Elts {
			v := el
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				v = kv.Value
			}
			evs = append(evs, w.expr(v)...)
			evs = append(evs, w.escape(v)...)
		}
		return evs
	case *ast.TypeAssertExpr:
		return w.expr(e.X)
	}
	return nil
}

// recvEvent builds the EvRecv for a <-x expression, or nil when x is
// not a receive.
func (w *eventWalker) recvEvent(e ast.Expr) *Event {
	u, ok := ast.Unparen(e).(*ast.UnaryExpr)
	if !ok || u.Op != token.ARROW {
		return nil
	}
	// <-ctx.Done(): a receive on the context object (the cancel edge).
	if call, ok := ast.Unparen(u.X).(*ast.CallExpr); ok {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
			if w.isContextExpr(sel.X) {
				return &Event{Kind: EvRecv, Pos: u.OpPos, Obj: w.syncObj(sel.X), What: exprString(sel.X) + ".Done()"}
			}
		}
		// <-time.After(d), <-someCall(): unnameable, externally satisfied.
		return &Event{Kind: EvRecv, Pos: u.OpPos, What: exprString(call.Fun) + "()"}
	}
	return &Event{Kind: EvRecv, Pos: u.OpPos, Obj: w.syncObj(u.X), What: exprString(u.X)}
}

// callExpr classifies one call: close, mutex/WaitGroup methods,
// cancel funcs, and resolved module calls (EvCall).
func (w *eventWalker) callExpr(call *ast.CallExpr) []Event {
	var evs []Event
	for _, arg := range call.Args {
		evs = append(evs, w.expr(arg)...)
	}
	fun := ast.Unparen(call.Fun)

	// close(ch)
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := w.fn.Info.Uses[id].(*types.Builtin); ok {
			if b.Name() == "close" && len(call.Args) == 1 {
				evs = append(evs, Event{Kind: EvClose, Pos: call.Pos(), Obj: w.syncObj(call.Args[0]), What: exprString(call.Args[0])})
			}
			return evs
		}
		// cancel() — a context.CancelFunc bound by WithCancel.
		if v, ok := w.fn.Info.Uses[id].(*types.Var); ok {
			if ctx, ok := w.cancelOf[v]; ok {
				evs = append(evs, Event{Kind: EvClose, Pos: call.Pos(), Obj: ctx, What: id.Name + "()"})
				return evs
			}
		}
	}

	callees := w.resolve(w.fn, call)
	for _, callee := range callees {
		if ev, ok := w.syncMethod(call, callee); ok {
			return append(evs, ev)
		}
	}
	if len(callees) > 0 {
		evs = append(evs, Event{
			Kind: EvCall, Pos: call.Pos(), What: funcDisplayName(callees[0]),
			Call: &CallInfo{Callees: callees, Args: w.argObjs(call)},
		})
	} else {
		// An unresolvable call (func value, interface with no known
		// implementers) may do anything with a channel argument.
		for _, arg := range call.Args {
			evs = append(evs, w.escape(arg)...)
		}
	}
	return evs
}

// escape emits an EvEscape when e is a nameable channel object, so the
// model checker stops treating the channel as closed-world.
func (w *eventWalker) escape(e ast.Expr) []Event {
	obj := w.syncObj(e)
	if obj == nil {
		return nil
	}
	if _, isChan := obj.Type().Underlying().(*types.Chan); !isChan {
		return nil
	}
	return []Event{{Kind: EvEscape, Pos: e.Pos(), Obj: obj, What: exprString(e)}}
}

// syncMethod maps sync.Mutex/RWMutex/WaitGroup method calls onto events.
func (w *eventWalker) syncMethod(call *ast.CallExpr, callee *types.Func) (Event, bool) {
	sig, ok := callee.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return Event{}, false
	}
	pkg := callee.Pkg()
	if pkg == nil || pkg.Path() != "sync" {
		return Event{}, false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return Event{}, false
	}
	obj := w.syncObj(sel.X)
	what := exprString(sel.X)
	switch recvTypeName(sig.Recv().Type()) {
	case "sync.Mutex", "sync.RWMutex":
		switch callee.Name() {
		case "Lock":
			return Event{Kind: EvLock, Pos: call.Pos(), Obj: obj, What: what}, true
		case "Unlock":
			return Event{Kind: EvUnlock, Pos: call.Pos(), Obj: obj, What: what}, true
		case "RLock":
			return Event{Kind: EvRLock, Pos: call.Pos(), Obj: obj, What: what}, true
		case "RUnlock":
			return Event{Kind: EvRUnlock, Pos: call.Pos(), Obj: obj, What: what}, true
		}
	case "sync.WaitGroup":
		switch callee.Name() {
		case "Add":
			delta := -1
			if len(call.Args) == 1 {
				if tv, ok := w.fn.Info.Types[call.Args[0]]; ok && tv.Value != nil {
					if v, exact := constIntValue(tv.Value.ExactString()); exact {
						delta = v
					}
				}
			}
			return Event{Kind: EvWgAdd, Pos: call.Pos(), Obj: obj, What: what, Delta: delta}, true
		case "Done":
			return Event{Kind: EvWgDone, Pos: call.Pos(), Obj: obj, What: what}, true
		case "Wait":
			return Event{Kind: EvWgWait, Pos: call.Pos(), Obj: obj, What: what}, true
		}
	}
	return Event{}, false
}

// deferEvents maps one deferred call onto its release events (empty for
// calls the model does not track).
func (w *eventWalker) deferEvents(call *ast.CallExpr) []Event {
	return w.callExprReleasesOnly(call)
}

// callExprReleasesOnly keeps only release-shaped events of a deferred
// call: unlocks, closes, wg.Done, cancel. A deferred Lock or send would
// be a bug the direct walk of the defer expression still surfaces via
// other analyzers; the model drops it rather than mis-ordering it.
func (w *eventWalker) callExprReleasesOnly(call *ast.CallExpr) []Event {
	var out []Event
	for _, ev := range w.callExpr(call) {
		switch ev.Kind {
		case EvUnlock, EvRUnlock, EvClose, EvWgDone:
			out = append(out, ev)
		}
	}
	return out
}

// goStmt builds the EvSpawn for one go statement.
func (w *eventWalker) goStmt(g *ast.GoStmt) Event {
	sp := &SpawnInfo{What: "func literal", Args: w.argObjs(g.Call)}
	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		inner := &eventWalker{fn: w.fn, resolve: w.resolve, cancelOf: w.cancelOf}
		body := inner.stmts(lit.Body.List)
		sp.Lit = &FnEvents{Body: body, Deferred: reverseEvents(inner.deferred), Name: "func literal"}
		if lit.Type.Params != nil {
			for _, f := range lit.Type.Params.List {
				for _, name := range f.Names {
					sp.LitParams = append(sp.LitParams, w.fn.Info.Defs[name])
				}
			}
		}
	} else {
		sp.Callees = w.resolve(w.fn, g.Call)
		if len(sp.Callees) > 0 {
			sp.What = funcDisplayName(sp.Callees[0])
		} else if name := exprString(g.Call.Fun); name != "" {
			sp.What = name
		}
	}
	return Event{Kind: EvSpawn, Pos: g.Pos(), What: sp.What, Spawn: sp}
}

// argObjs maps call arguments to their sync objects (nil where the
// argument is not a nameable channel/mutex/WaitGroup/context).
func (w *eventWalker) argObjs(call *ast.CallExpr) []types.Object {
	out := make([]types.Object, len(call.Args))
	for i, arg := range call.Args {
		out[i] = w.syncObj(arg)
	}
	return out
}

// syncObj resolves an expression to the variable object identifying a
// sync primitive: a plain identifier or a struct-field selection.
// &x and (*x) peel to x.
func (w *eventWalker) syncObj(e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if v, ok := w.fn.Info.Uses[e].(*types.Var); ok {
			return v
		}
		if v, ok := w.fn.Info.Defs[e].(*types.Var); ok {
			return v
		}
	case *ast.SelectorExpr:
		if s, ok := w.fn.Info.Selections[e]; ok && s.Kind() == types.FieldVal {
			if v, ok := s.Obj().(*types.Var); ok {
				return v
			}
		}
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return w.syncObj(e.X)
		}
	case *ast.StarExpr:
		return w.syncObj(e.X)
	}
	return nil
}

func (w *eventWalker) defOrUse(e ast.Expr) types.Object {
	return w.syncObj(e)
}

func (w *eventWalker) typeOf(e ast.Expr) types.Type {
	if tv, ok := w.fn.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// isMakeChan reports a make(chan T[, n]) call.
func (w *eventWalker) isMakeChan(call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := w.fn.Info.Uses[id].(*types.Builtin)
	if !ok || b.Name() != "make" || len(call.Args) == 0 {
		return false
	}
	if tv, ok := w.fn.Info.Types[call.Args[0]]; ok && tv.IsType() {
		_, isChan := tv.Type.Underlying().(*types.Chan)
		return isChan
	}
	return false
}

// chanCap evaluates the make(chan) capacity: 0 for unbuffered, the
// constant for buffered, -1 when the capacity is not a constant.
func (w *eventWalker) chanCap(call *ast.CallExpr) int {
	if len(call.Args) < 2 {
		return 0
	}
	if tv, ok := w.fn.Info.Types[call.Args[1]]; ok && tv.Value != nil {
		if v, exact := constIntValue(tv.Value.ExactString()); exact {
			return v
		}
	}
	return -1
}

// isCtxWithCancel reports context.WithCancel/WithTimeout/WithDeadline.
func (w *eventWalker) isCtxWithCancel(call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := w.fn.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return false
	}
	switch fn.Name() {
	case "WithCancel", "WithTimeout", "WithDeadline", "WithCancelCause":
		return true
	}
	return false
}

// isContextExpr reports whether e has type context.Context.
func (w *eventWalker) isContextExpr(e ast.Expr) bool {
	t := w.typeOf(e)
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// constIntValue parses a small non-negative decimal constant rendering.
func constIntValue(s string) (int, bool) {
	n := 0
	if s == "" {
		return 0, false
	}
	for _, c := range s {
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int(c-'0')
		if n > 1<<20 {
			return 0, false
		}
	}
	return n, true
}
