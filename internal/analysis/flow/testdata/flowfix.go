// Package flowfix is the fixture for the flow summary unit tests: each
// function exercises exactly one fact the summaries must record —
// an allocation kind, an escaping parameter, a spawn, a signal.
package flowfix

import (
	"context"
	"sync"
	"sync/atomic"
)

// MakeMap allocates with make.
func MakeMap(n int) map[int]int { return make(map[int]int, n) }

// Grow may grow its argument's backing array.
func Grow(xs []int) []int { return append(xs, 1) }

// Box stores an int in an interface.
func Box(v int) int {
	var i interface{} = v
	n, _ := i.(int)
	return n
}

// Convert copies a string into a byte slice.
func Convert(s string) []byte { return []byte(s) }

// Concat builds a new string.
func Concat(a, b string) string { return a + b }

// RangeMap iterates a map.
func RangeMap(m map[int]int) int {
	t := 0
	for _, v := range m {
		t += v
	}
	return t
}

// CallsMake has no direct allocation but reaches one through MakeMap.
func CallsMake(n int) int { return len(MakeMap(n)) }

// Pure neither allocates nor calls anything that does.
func Pure(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Leak returns its pointer argument: the parameter escapes.
func Leak(p *int) *int { return p }

// Keep only reads through its pointer argument.
func Keep(p *int) int { return *p }

// SendsTo publishes p through the channel: p escapes.
func SendsTo(ch chan *int, p *int) { ch <- p }

// Spinner spawns a goroutine with no termination signal.
func Spinner() {
	go func() {
		for {
		}
	}()
}

// WatchCtx spawns a goroutine that observes its context.
func WatchCtx(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

// Tracked spawns a goroutine that signals a WaitGroup.
func Tracked(wg *sync.WaitGroup) {
	go func() {
		defer wg.Done()
	}()
}

// Server owns a goroutine whose stop signal sits one call down.
type Server struct{ done chan struct{} }

func (s *Server) loop() { <-s.done }

// Run spawns loop; its termination signal is transitive.
func (s *Server) Run() { go s.loop() }

// Counter updates its field through sync/atomic by address.
type Counter struct{ n int64 }

// Inc is the address-style atomic update the summaries must record.
func (c *Counter) Inc() { atomic.AddInt64(&c.n, 1) }
