package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// The wrapcheck analyzer: an error value formatted into fmt.Errorf must
// use the %w verb. Formatting an error with %v (or %s) flattens it to
// text — errors.Is/As stop seeing the chain, so the retry classifiers
// (client.TransientRPC, the fsck/invariant sentinels) silently
// misclassify wrapped transport errors as permanent. Returning a typed
// error instead of fmt.Errorf is fine and not flagged; deliberately
// breaking a chain is annotated //lint:ignore wrapcheck <why>.

// checkWrapCheck scans every fmt.Errorf call with a constant format.
func (r *Runner) checkWrapCheck(pkg *Package) {
	errType := types.Universe.Lookup("error").Type()
	errIface := errType.Underlying().(*types.Interface)
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) < 2 {
				return true
			}
			sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Errorf" {
				return true
			}
			ident, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			if pkgName, ok := pkg.Info.Uses[ident].(*types.PkgName); !ok || pkgName.Imported().Path() != "fmt" {
				return true
			}
			tv, ok := pkg.Info.Types[call.Args[0]]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
				return true
			}
			verbs := formatVerbs(constant.StringVal(tv.Value))
			for i, verb := range verbs {
				argIdx := 1 + i
				if argIdx >= len(call.Args) || verb == 'w' {
					continue
				}
				arg := call.Args[argIdx]
				t := pkg.Info.TypeOf(arg)
				if t == nil {
					continue
				}
				if !types.Identical(t, errType) && !types.Implements(t, errIface) {
					continue
				}
				r.report(arg.Pos(), RuleWrapCheck,
					"error flattened by %%%c in fmt.Errorf; use %%w (or return a typed error) so errors.Is/As and retry classification keep seeing the chain",
					verb)
			}
			return true
		})
	}
}

// formatVerbs returns, per consumed argument, the verb that formats it.
// Width/precision stars consume an argument and are recorded as '*'.
// %% consumes nothing. The scanner covers the fmt subset this codebase
// uses; an exotic format just yields fewer recorded verbs (never a
// false positive, since unmatched arguments are skipped).
func formatVerbs(format string) []rune {
	var verbs []rune
	runes := []rune(format)
	for i := 0; i < len(runes); i++ {
		if runes[i] != '%' {
			continue
		}
		i++
		// Flags.
		for i < len(runes) {
			switch runes[i] {
			case '+', '-', '#', ' ', '0', '\'':
				i++
				continue
			}
			break
		}
		// Width.
		if i < len(runes) && runes[i] == '*' {
			verbs = append(verbs, '*')
			i++
		} else {
			for i < len(runes) && runes[i] >= '0' && runes[i] <= '9' {
				i++
			}
		}
		// Precision.
		if i < len(runes) && runes[i] == '.' {
			i++
			if i < len(runes) && runes[i] == '*' {
				verbs = append(verbs, '*')
				i++
			} else {
				for i < len(runes) && runes[i] >= '0' && runes[i] <= '9' {
					i++
				}
			}
		}
		if i >= len(runes) {
			break
		}
		if runes[i] == '%' {
			continue // %% literal, no argument
		}
		verbs = append(verbs, runes[i])
	}
	return verbs
}
