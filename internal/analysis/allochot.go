package analysis

import (
	"go/token"
	"go/types"
	"strings"

	"aurora/internal/analysis/flow"
)

// allochot: functions reachable from a //lint:hotpath-annotated root may
// not heap-allocate. The roots are the paths whose budgets the repo has
// fought for — the Algorithm-5 inner loop (bestPairOpSwap /
// bestSwapCounterpart), the loadindex segment trees, and the lock-free
// metrics record path — and the rule walks the static call graph from
// them, charging every allocation class the flow layer records: make /
// new / heap composites, append growth, interface boxing, escaping
// closures, map iteration, fmt-family calls, string building, go/defer
// statements, and calls through opaque function values (whose effects
// cannot be proven). //lint:coldpath <why> on a callee prunes a
// deliberately cold branch out of reachability; a single finding is
// silenced in place with //lint:ignore allochot <why>.

// checkAllocHot runs the rule over the whole module.
func (r *Runner) checkAllocHot() {
	roots, cold, attached := r.hotpathRoots()

	// Every //lint:hotpath or //lint:coldpath directive must sit in the
	// doc comment of a function declaration; anywhere else it silently
	// does nothing, which is exactly the failure mode directives exist to
	// avoid.
	for pos, name := range r.funcDirs {
		if !attached[pos] {
			r.report(pos, RuleDirective,
				"//lint:%s must be in the doc comment of a function declaration", name)
		}
	}
	if len(roots) == 0 {
		return
	}

	reachedFrom := r.hotReachability(roots, cold)
	fl := r.Flow()
	for _, fi := range r.facts.FuncList {
		root := reachedFrom[fi.Obj]
		if root == nil || cold[fi.Obj] {
			continue
		}
		sum := fl.Summary(fi.Obj)
		if sum == nil {
			continue
		}
		for _, a := range sum.Allocs {
			r.report(a.Pos, RuleAllocHot, "%s in %s on a hot path (reachable from //lint:hotpath root %s)",
				allocDesc(a), fi.Obj.Name(), root.Obj.Name())
		}
	}
}

// hotpathRoots scans function doc comments for the hotpath/coldpath
// directives, returning the root set, the cold set, and the directive
// comment positions that found a function to attach to.
func (r *Runner) hotpathRoots() (roots []*FuncInfo, cold map[*types.Func]bool, attached map[token.Pos]bool) {
	cold = make(map[*types.Func]bool)
	attached = make(map[token.Pos]bool)
	for _, fi := range r.facts.FuncList {
		if fi.Decl.Doc == nil {
			continue
		}
		for _, c := range fi.Decl.Doc.List {
			switch funcDirName(c.Text) {
			case "hotpath":
				roots = append(roots, fi)
				attached[c.Pos()] = true
			case "coldpath":
				cold[fi.Obj] = true
				attached[c.Pos()] = true
			}
		}
	}
	return roots, cold, attached
}

// funcDirName extracts the directive name of a //lint:hotpath or
// //lint:coldpath comment, or "".
func funcDirName(text string) string {
	rest, ok := strings.CutPrefix(text, "//lint:")
	if !ok {
		return ""
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return ""
	}
	if fields[0] == "hotpath" || fields[0] == "coldpath" {
		return fields[0]
	}
	return ""
}

// hotReachability walks the call graph breadth-first from the roots,
// recording for each reached function the first root that reaches it
// (for the diagnostic). Calls under go statements are skipped — work on
// another goroutine is not on the caller's critical path (the go
// statement itself is already charged) — and //lint:coldpath functions
// stop the walk.
func (r *Runner) hotReachability(roots []*FuncInfo, cold map[*types.Func]bool) map[*types.Func]*FuncInfo {
	reachedFrom := make(map[*types.Func]*FuncInfo)
	var queue []*FuncInfo
	for _, root := range roots {
		if reachedFrom[root.Obj] == nil {
			reachedFrom[root.Obj] = root
			queue = append(queue, root)
		}
	}
	for len(queue) > 0 {
		fi := queue[0]
		queue = queue[1:]
		root := reachedFrom[fi.Obj]
		for _, site := range fi.Sites {
			if site.InGo {
				continue
			}
			for _, callee := range site.Callees {
				ci := r.facts.Funcs[callee]
				if ci == nil || cold[callee] || reachedFrom[callee] != nil {
					continue
				}
				reachedFrom[callee] = root
				queue = append(queue, ci)
			}
		}
	}
	return reachedFrom
}

// allocDesc renders one flow.Alloc for a diagnostic.
func allocDesc(a flow.Alloc) string {
	switch a.Kind {
	case flow.AllocMake:
		return "make heap-allocates"
	case flow.AllocNew:
		return "new heap-allocates"
	case flow.AllocComposite:
		if a.What != "" {
			return "composite literal " + a.What + " heap-allocates"
		}
		return "composite literal heap-allocates"
	case flow.AllocAppend:
		return "append may grow its backing array"
	case flow.AllocCall:
		return "call to allocating " + a.What
	case flow.AllocConvert:
		return "conversion to " + a.What + " copies memory"
	case flow.AllocBoxing:
		return "value of type " + a.What + " is boxed into an interface"
	case flow.AllocClosure:
		return "closure captures escape to the heap"
	case flow.AllocMapRange:
		return "map iteration allocates its iterator"
	case flow.AllocGoStmt:
		return "go statement allocates a goroutine"
	case flow.AllocDefer:
		return "defer may allocate its frame"
	case flow.AllocStringConcat:
		return "string concatenation allocates"
	case flow.AllocOpaqueCall:
		return "call through opaque function value " + a.What + " may allocate"
	default:
		return "allocation"
	}
}
