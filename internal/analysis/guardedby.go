package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// The guarded-by convention (documented in DESIGN.md): inside a struct,
// a sync.Mutex/sync.RWMutex field guards every field that follows it in
// the same contiguous field group — the run of fields unbroken by a
// blank line. A blank line (or another mutex field) ends the group, so
// unguarded fields (channels closed once, construction-time immutables,
// self-synchronized members) are declared in their own groups.
//
// The rule is a conservative intra-procedural check of the exported API:
// an exported method that reads or writes a guarded field must first
// call Lock/RLock on the guarding mutex (lexically before the access).
// Unexported helpers follow the *Locked naming convention and are the
// caller's responsibility.

// mutexGroup is one mutex field and the fields it guards.
type mutexGroup struct {
	mutexField string // "" for an embedded sync.Mutex
	rw         bool
	fields     map[string]bool
}

// guardedStruct is a struct type with at least one mutex field.
type guardedStruct struct {
	name   string
	groups []*mutexGroup
}

// isMutexType reports whether t is sync.Mutex or sync.RWMutex (rw tells
// which).
func isMutexType(t types.Type) (rw bool, ok bool) {
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return false, false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false, false
	}
	switch obj.Name() {
	case "Mutex":
		return false, true
	case "RWMutex":
		return true, true
	}
	return false, false
}

// collectGuardedStructs finds every mutex-bearing struct declared in the
// package and computes its guarded field groups from the declaration
// layout.
func (r *Runner) collectGuardedStructs(pkg *Package) map[string]*guardedStruct {
	out := make(map[string]*guardedStruct)
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				gs := r.groupStructFields(pkg, st)
				if gs != nil {
					gs.name = ts.Name.Name
					out[gs.name] = gs
				}
			}
		}
	}
	return out
}

// groupStructFields walks the struct's fields in declaration order,
// starting a guarded group at each mutex field and closing it at the
// first blank line. Returns nil when the struct has no mutex field.
func (r *Runner) groupStructFields(pkg *Package, st *ast.StructType) *guardedStruct {
	gs := &guardedStruct{}
	var cur *mutexGroup
	var prevEnd int
	for i, field := range st.Fields.List {
		start := r.mod.Fset.Position(field.Pos()).Line
		if field.Doc != nil {
			start = r.mod.Fset.Position(field.Doc.Pos()).Line
		}
		if i > 0 && start > prevEnd+1 {
			cur = nil // blank line: the guarded group ends here
		}
		prevEnd = r.mod.Fset.Position(field.End()).Line
		if field.Comment != nil {
			prevEnd = r.mod.Fset.Position(field.Comment.End()).Line
		}
		ft := pkg.Info.TypeOf(field.Type)
		if ft != nil {
			if rw, ok := isMutexType(ft); ok {
				cur = &mutexGroup{rw: rw, fields: make(map[string]bool)}
				if len(field.Names) > 0 {
					cur.mutexField = field.Names[0].Name
				}
				gs.groups = append(gs.groups, cur)
				continue
			}
		}
		if cur == nil {
			continue
		}
		for _, name := range field.Names {
			cur.fields[name.Name] = true
		}
	}
	if len(gs.groups) == 0 {
		return nil
	}
	return gs
}

// receiverInfo resolves a method's receiver: the *types.Var of the
// receiver identifier and the name of its (pointer-stripped) base type.
func receiverInfo(pkg *Package, fd *ast.FuncDecl) (*types.Var, string) {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil, ""
	}
	ident := fd.Recv.List[0].Names[0]
	if ident.Name == "_" {
		return nil, ""
	}
	obj, ok := pkg.Info.Defs[ident].(*types.Var)
	if !ok {
		return nil, ""
	}
	t := obj.Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil, ""
	}
	return obj, named.Obj().Name()
}

// checkGuardedBy enforces the guarded-by convention on every exported
// method of every mutex-bearing struct.
func (r *Runner) checkGuardedBy(pkg *Package) {
	structs := r.collectGuardedStructs(pkg)
	if len(structs) == 0 {
		return
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !exportedFuncName(fd) {
				continue
			}
			recv, typeName := receiverInfo(pkg, fd)
			if recv == nil {
				continue
			}
			gs, ok := structs[typeName]
			if !ok {
				continue
			}
			r.checkMethodLocks(pkg, fd, recv, gs)
		}
	}
}

// checkMethodLocks scans one method body in source order: guarded field
// accesses are only legal after a Lock/RLock call on the guarding mutex.
func (r *Runner) checkMethodLocks(pkg *Package, fd *ast.FuncDecl, recv *types.Var, gs *guardedStruct) {
	// lockedAt[g] is the position of the first Lock/RLock on group g's
	// mutex; math.MaxInt-ish sentinel when never locked.
	lockedAt := make(map[*mutexGroup]token.Pos)
	reported := make(map[string]bool)

	isRecv := func(e ast.Expr) bool {
		ident, ok := e.(*ast.Ident)
		if !ok {
			return false
		}
		return pkg.Info.Uses[ident] == recv
	}

	// Pass 1: find the earliest lock call per mutex group.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock" {
			return true
		}
		var g *mutexGroup
		switch x := sel.X.(type) {
		case *ast.SelectorExpr: // recv.mu.Lock()
			if !isRecv(x.X) {
				return true
			}
			for _, cand := range gs.groups {
				if cand.mutexField == x.Sel.Name {
					g = cand
					break
				}
			}
		case *ast.Ident: // recv.Lock() via an embedded mutex
			if !isRecv(x) {
				return true
			}
			for _, cand := range gs.groups {
				if cand.mutexField == "" {
					g = cand
					break
				}
			}
		}
		if g == nil {
			return true
		}
		if at, ok := lockedAt[g]; !ok || call.Pos() < at {
			lockedAt[g] = call.Pos()
		}
		return true
	})

	// Pass 2: every guarded access must come after its mutex was locked.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if !isRecv(sel.X) {
			return true
		}
		for _, g := range gs.groups {
			if !g.fields[sel.Sel.Name] {
				continue
			}
			at, locked := lockedAt[g]
			if locked && at < sel.Pos() {
				continue
			}
			if reported[sel.Sel.Name] {
				continue
			}
			reported[sel.Sel.Name] = true
			mu := g.mutexField
			if mu == "" {
				mu = "the embedded mutex"
			}
			if locked {
				r.report(sel.Pos(), RuleGuardedBy,
					"%s.%s accesses %q (guarded by %s) before acquiring the lock",
					gs.name, fd.Name.Name, sel.Sel.Name, mu)
			} else {
				r.report(sel.Pos(), RuleGuardedBy,
					"%s.%s accesses %q without holding %s (guarded fields follow their mutex in the struct; see DESIGN.md)",
					gs.name, fd.Name.Name, sel.Sel.Name, mu)
			}
		}
		return true
	})
}
