package analysis

import (
	"go/ast"
	"go/types"
)

// The determinism rule (//lint:deterministic): the paper's algorithms
// and the simulator must be replayable from a seed, so packages that opt
// in may not draw from the global math/rand generators or read the wall
// clock. Randomness is threaded as a *rand.Rand and time as an explicit
// clock/tick value.

// randConstructors are the math/rand and math/rand/v2 names that build
// or type seeded generators — the only sanctioned uses.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewPCG": true, "NewChaCha8": true,
	"NewZipf": true, "Rand": true, "Source": true, "Source64": true,
	"PCG": true, "ChaCha8": true, "Zipf": true,
}

// wallClockFuncs are the time package functions that read the wall
// clock, directly or through a timer that fires off it.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true,
	"AfterFunc": true,
}

// checkDeterminism flags global-generator and wall-clock uses in
// packages that declared //lint:deterministic.
func (r *Runner) checkDeterminism(pkg *Package) {
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			ident, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := pkg.Info.Uses[ident].(*types.PkgName)
			if !ok {
				return true
			}
			switch pkgName.Imported().Path() {
			case "math/rand", "math/rand/v2":
				if !randConstructors[sel.Sel.Name] {
					r.report(sel.Pos(), RuleDeterminism,
						"global rand.%s in a deterministic package; thread a seeded *rand.Rand instead",
						sel.Sel.Name)
				}
			case "time":
				if wallClockFuncs[sel.Sel.Name] {
					r.report(sel.Pos(), RuleDeterminism,
						"time.%s reads the wall clock in a deterministic package; thread an explicit clock",
						sel.Sel.Name)
				}
			}
			return true
		})
	}
}
