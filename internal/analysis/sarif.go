package analysis

import (
	"encoding/json"
	"io"
	"path/filepath"
	"strings"
)

// Minimal SARIF 2.1.0 output so CI systems and editors can ingest
// aurora-lint findings as a standard artifact. Only the fields the
// format requires (plus regions) are emitted; the schema subset is
// hand-rolled because the module is dependency-free.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// ruleDescriptions gives each rule its one-line SARIF description.
var ruleDescriptions = map[string]string{
	RuleGuardedBy:   "guarded field accessed without its mutex",
	RuleMutexCopy:   "mutex-bearing struct copied by value",
	RuleDeterminism: "global rand or wall clock in a deterministic package",
	RuleFloatCmp:    "exact float comparison in a strict-float package",
	RuleErrCheck:    "error result silently discarded",
	RuleDirective:   "malformed //lint: directive",
	RulePkgDoc:      "package without a godoc package comment",
	RuleLockOrder:   "inconsistent cross-package lock acquisition order",
	RuleCtxDeadline: "fire-and-forget RPC outside any retrypolicy context",
	RuleRngTaint:    "wall-clock/RNG taint reaching deterministic code",
	RuleWrapCheck:   "error chain broken at a package boundary",
	RuleAllocHot:    "heap allocation reachable from a //lint:hotpath root",
	RuleAtomicMix:   "field mixes sync/atomic access with plain reads/writes",
	RuleGoroLeak:    "go statement without a provable termination signal",
	RuleGlobalMut:   "mutable package-level state (namenode sharding blocker)",
}

// WriteSARIF renders diagnostics as a SARIF 2.1.0 log. File URIs are
// made root-relative with forward slashes.
func WriteSARIF(w io.Writer, diags []Diagnostic, root string) error {
	rules := make([]sarifRule, 0, len(KnownRules))
	for _, id := range KnownRules {
		rules = append(rules, sarifRule{
			ID:               id,
			ShortDescription: sarifMessage{Text: ruleDescriptions[id]},
		})
	}
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		uri := d.Pos.Filename
		if rel, err := filepath.Rel(root, uri); err == nil && !strings.HasPrefix(rel, "..") {
			uri = rel
		}
		results = append(results, sarifResult{
			RuleID:  d.Rule,
			Level:   "error",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: filepath.ToSlash(uri)},
					Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "aurora-lint", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
