package analysis

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/types"
)

// The error-hygiene rule: a call whose results include an error may not
// be used as a bare statement — the error silently vanishes. Explicitly
// assigning to blank (`_ = f()`) is allowed: it is visible intent, and
// the form reviewers grep for. Deferred calls (`defer f.Close()`) are
// exempt: their errors arrive after the interesting return value is
// already decided, and Close-on-cleanup is the repo's convention.
// Test files are not analyzed at all.

// resultHasError reports whether t (a single type or a tuple) contains
// the error type.
func resultHasError(t types.Type) bool {
	if t == nil {
		return false
	}
	errType := types.Universe.Lookup("error").Type()
	if tuple, ok := t.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if types.Identical(tuple.At(i).Type(), errType) {
				return true
			}
		}
		return false
	}
	return types.Identical(t, errType)
}

// exempt reports calls whose error is noise by convention: the fmt
// print family (diagnostic output is best-effort; Fprint errors surface
// via the writer's own Close/Flush), and in-memory writers that are
// documented never to fail.
func exempt(pkg *Package, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if ident, ok := sel.X.(*ast.Ident); ok {
		if pkgName, ok := pkg.Info.Uses[ident].(*types.PkgName); ok && pkgName.Imported().Path() == "fmt" {
			switch sel.Sel.Name {
			case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
				return true
			}
		}
	}
	if t := pkg.Info.TypeOf(sel.X); t != nil {
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		switch t.String() {
		case "bytes.Buffer", "strings.Builder":
			return true
		}
	}
	return false
}

// checkErrCheck flags expression statements that discard an error,
// blank assignments that do the same, and deferred Close on writable
// files (whose error is the write durability signal).
func (r *Runner) checkErrCheck(pkg *Package) {
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				call, ok := n.X.(*ast.CallExpr)
				if !ok {
					return true
				}
				if !resultHasError(pkg.Info.TypeOf(call)) || exempt(pkg, call) {
					return true
				}
				r.report(call.Pos(), RuleErrCheck,
					"error returned by %s is discarded; handle it or assign to _ explicitly", callName(r, call))
			case *ast.AssignStmt:
				r.checkBlankErrAssign(pkg, n)
			case *ast.FuncDecl:
				if n.Body != nil {
					r.checkDeferredFileClose(pkg, n)
				}
			}
			return true
		})
	}
}

// callName renders a call's function expression for messages.
func callName(r *Runner, call *ast.CallExpr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, r.mod.Fset, call.Fun); err != nil {
		return "call"
	}
	return buf.String()
}

// checkBlankErrAssign flags assignments whose error results all land in
// the blank identifier (`_ = f()`, `_, _, _ = rpc(...)`). PR 1 allowed
// the form as visible intent; with //lint:ignore available the intent
// now has to carry a reason, so silent drops stop hiding among the
// deliberate ones.
func (r *Runner) checkBlankErrAssign(pkg *Package, assign *ast.AssignStmt) {
	if len(assign.Rhs) != 1 {
		return
	}
	call, ok := unparen(assign.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	t := pkg.Info.TypeOf(call)
	if !resultHasError(t) || exempt(pkg, call) {
		return
	}
	errType := types.Universe.Lookup("error").Type()
	anyErr, allBlank := false, true
	if tuple, ok := t.(*types.Tuple); ok {
		for i := 0; i < tuple.Len() && i < len(assign.Lhs); i++ {
			if types.Identical(tuple.At(i).Type(), errType) {
				anyErr = true
				if id, ok := assign.Lhs[i].(*ast.Ident); !ok || id.Name != "_" {
					allBlank = false
				}
			}
		}
	} else if len(assign.Lhs) == 1 {
		anyErr = true
		if id, ok := assign.Lhs[0].(*ast.Ident); !ok || id.Name != "_" {
			allBlank = false
		}
	}
	if !anyErr || !allBlank {
		return
	}
	r.report(assign.Pos(), RuleErrCheck,
		"error returned by %s is discarded by assignment to _; handle it or annotate //lint:ignore errcheck <why>", callName(r, call))
}

// checkDeferredFileClose flags `defer f.Close()` on an *os.File that
// this function opened for writing: the Close error is where a failed
// flush surfaces, so dropping it can silently truncate output. Files
// opened with os.Open are read-only and stay exempt, as does every
// non-file Close (the repo's cleanup convention).
func (r *Runner) checkDeferredFileClose(pkg *Package, fd *ast.FuncDecl) {
	// Pass 1: how each *os.File variable in this function was opened.
	readOnly := make(map[types.Object]bool)
	writable := make(map[types.Object]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Rhs) != 1 || len(assign.Lhs) == 0 {
			return true
		}
		call, ok := unparen(assign.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		ident, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pkgName, ok := pkg.Info.Uses[ident].(*types.PkgName)
		if !ok || pkgName.Imported().Path() != "os" {
			return true
		}
		target, ok := assign.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		obj := pkg.Info.Defs[target]
		if obj == nil {
			obj = pkg.Info.Uses[target]
		}
		if obj == nil {
			return true
		}
		switch sel.Sel.Name {
		case "Open":
			readOnly[obj] = true
		case "Create", "OpenFile", "CreateTemp":
			writable[obj] = true
		}
		return true
	})
	if len(writable) == 0 {
		return
	}
	// Pass 2: deferred Close on a writable file.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		def, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		sel, ok := unparen(def.Call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Close" {
			return true
		}
		ident, ok := unparen(sel.X).(*ast.Ident)
		if !ok {
			return true
		}
		obj := pkg.Info.Uses[ident]
		if obj == nil || !writable[obj] || readOnly[obj] {
			return true
		}
		r.report(def.Call.Pos(), RuleErrCheck,
			"deferred Close on writable file %s discards the flush error; close explicitly on the success path and check it", ident.Name)
		return true
	})
}
