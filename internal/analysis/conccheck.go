// The conc pass: runs the bounded model checker (internal/analysis/conc)
// over every root function that spawns goroutines. Event skeletons are
// extracted lazily per function and shared across roots, so the cost is
// one EventsOf per function plus the exploration itself, which is
// capped by the -conc-budget wall clock split across roots.
package analysis

import (
	"go/ast"
	"go/types"
	"time"

	"aurora/internal/analysis/conc"
	"aurora/internal/analysis/flow"
)

// DefaultConcBudget caps the model checker's total wall time when the
// CLI does not override it with -conc-budget.
const DefaultConcBudget = 3 * time.Second

func (r *Runner) checkConc() {
	budget := r.concBudget
	if budget <= 0 {
		budget = DefaultConcBudget
	}
	deadline := time.Now().Add(budget)

	byInfo := make(map[*types.Info]*Package, len(r.pkgs))
	for _, pkg := range r.pkgs {
		byInfo[pkg.Info] = pkg
	}
	byObj := make(map[*types.Func]*FuncInfo, len(r.facts.FuncList))
	for _, fi := range r.facts.FuncList {
		byObj[fi.Obj] = fi
	}

	events := make(map[*types.Func]*flow.FnEvents)
	var extract func(fn *types.Func) *flow.FnEvents
	extract = func(fn *types.Func) *flow.FnEvents {
		if fe, ok := events[fn]; ok {
			return fe
		}
		fi, ok := byObj[fn]
		if !ok || fi.Decl == nil || fi.Decl.Body == nil {
			events[fn] = nil
			return nil
		}
		// Reserve the slot first: EventsOf never recurses, but the
		// lookup the checker calls later may ask for fn again.
		events[fn] = nil
		f := flow.Func{Obj: fi.Obj, Decl: fi.Decl, Info: fi.Pkg.Info}
		fe := flow.EventsOf(f, func(inner flow.Func, call *ast.CallExpr) []*types.Func {
			pkg := byInfo[inner.Info]
			if pkg == nil {
				return nil
			}
			return r.facts.resolveCallees(pkg, call)
		})
		events[fn] = fe
		return fe
	}

	opts := conc.Options{Deadline: deadline, Fset: r.mod.Fset}
	for _, fi := range r.facts.FuncList {
		fe := extract(fi.Obj)
		if fe == nil || !fe.HasSpawn() {
			continue
		}
		if time.Now().After(deadline) {
			return
		}
		for _, f := range conc.Check(fe, extract, opts) {
			r.report(f.Pos, RuleConc, "%s", f.Msg)
		}
	}
}
