package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// globalmut: mutable package-level state is a sharding blocker. ROADMAP
// item 1 wants the namenode partitioned into independently-locked
// shards; every package-level variable that is written after
// initialization is ambient state those shards would silently share, so
// the rule surfaces each one at its declaration with the first mutation
// as evidence. A mutation is an assignment or ++/-- of the variable, a
// store through it (field, element, delete), or a pointer-receiver
// method call on it or on what it points to — except methods of stdlib
// types that are immutable after construction (regexp.Regexp,
// strings.Replacer) or that implement the variable's own synchronization
// (sync.Mutex and friends: the lock is mutable by design; what it
// guards is what the guardedby rule audits). Writes inside func init()
// are initialization, not mutation, and are exempt. Deliberate globals
// — a default metrics registry, a seeded jitter source — are annotated
// at the declaration with //lint:ignore globalmut <why>.

// globalMutation is one mutating use of a package-level variable.
type globalMutation struct {
	obj  *types.Var
	pos  token.Pos
	kind string
}

// checkGlobalMut runs the rule over the whole module.
func (r *Runner) checkGlobalMut() {
	// Every package-level variable of the module.
	globals := make(map[*types.Var]bool)
	for _, pkg := range r.pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			if v, ok := scope.Lookup(name).(*types.Var); ok {
				globals[v] = true
			}
		}
	}

	var muts []globalMutation
	for _, pkg := range r.pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if fd.Name.Name == "init" && fd.Recv == nil {
					continue // initialization, not mutation
				}
				muts = append(muts, r.mutationsIn(pkg, fd, globals)...)
			}
		}
	}

	// One finding per variable, citing the first mutation, reported at
	// the declaration so a single //lint:ignore globalmut at the var
	// covers every mutation site.
	sort.Slice(muts, func(i, j int) bool {
		a, b := r.mod.Fset.Position(muts[i].pos), r.mod.Fset.Position(muts[j].pos)
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	seen := make(map[*types.Var]bool)
	for _, m := range muts {
		if seen[m.obj] {
			continue
		}
		seen[m.obj] = true
		r.report(m.obj.Pos(), RuleGlobalMut,
			"package-level variable %s is mutated (%s at %s); mutable global state blocks namenode sharding (ROADMAP #1)",
			m.obj.Name(), m.kind, r.shortPos(m.pos))
	}
}

// mutationsIn collects the mutating uses of package-level variables
// inside one function body.
func (r *Runner) mutationsIn(pkg *Package, fd *ast.FuncDecl, globals map[*types.Var]bool) []globalMutation {
	var out []globalMutation
	add := func(expr ast.Expr, pos token.Pos, kind string) {
		if v := globalRoot(pkg, expr, globals); v != nil {
			out = append(out, globalMutation{obj: v, pos: pos, kind: kind})
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					if v, ok := pkg.Info.Uses[id].(*types.Var); ok && globals[v] {
						out = append(out, globalMutation{obj: v, pos: lhs.Pos(), kind: "assigned"})
					}
					continue
				}
				add(lhs, lhs.Pos(), "written through")
			}
		case *ast.IncDecStmt:
			if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
				if v, ok := pkg.Info.Uses[id].(*types.Var); ok && globals[v] {
					out = append(out, globalMutation{obj: v, pos: n.Pos(), kind: "incremented"})
				}
				break
			}
			add(n.X, n.Pos(), "written through")
		case *ast.CallExpr:
			out = append(out, r.mutatingCall(pkg, n, globals)...)
		}
		return true
	})
	return out
}

// mutatingCall classifies one call as a mutation of a global: delete on
// a global map, or a pointer-receiver method invoked on (or through) a
// global whose type is not in the immutable/synchronization allowlist.
func (r *Runner) mutatingCall(pkg *Package, call *ast.CallExpr, globals map[*types.Var]bool) []globalMutation {
	fun := ast.Unparen(call.Fun)
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := pkg.Info.Uses[id].(*types.Builtin); ok && b.Name() == "delete" && len(call.Args) > 0 {
			if v := globalRoot(pkg, call.Args[0], globals); v != nil {
				return []globalMutation{{obj: v, pos: call.Pos(), kind: "delete"}}
			}
		}
		return nil
	}
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	s, ok := pkg.Info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return nil
	}
	m, ok := s.Obj().(*types.Func)
	if !ok {
		return nil
	}
	sig, ok := m.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	if _, ptrRecv := sig.Recv().Type().(*types.Pointer); !ptrRecv {
		return nil // value receiver cannot mutate the global
	}
	recv := recvTypeDisplay(sig.Recv().Type())
	if immutableReceiver(recv) {
		return nil
	}
	if v := globalRoot(pkg, sel.X, globals); v != nil {
		return []globalMutation{{obj: v, pos: call.Pos(), kind: "pointer-method call " + recv + "." + m.Name()}}
	}
	return nil
}

// globalRoot peels a selector/index/star chain and returns the
// package-level variable at its root, or nil.
func globalRoot(pkg *Package, e ast.Expr, globals map[*types.Var]bool) *types.Var {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			// Qualified reference to another package's global (pkg.Var):
			// the selection resolves straight to the variable. Struct
			// fields also resolve to a *types.Var here, but fields are
			// never in the package-scope globals set.
			if v, ok := pkg.Info.Uses[x.Sel].(*types.Var); ok && globals[v] {
				return v
			}
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.Ident:
			if v, ok := pkg.Info.Uses[x].(*types.Var); ok && globals[v] {
				return v
			}
			return nil
		default:
			return nil
		}
	}
}

// immutableReceiver lists pointer-receiver stdlib types whose methods do
// not make the holder meaningfully mutable: compiled/immutable-after-
// construction objects and the synchronization primitives themselves.
func immutableReceiver(recv string) bool {
	switch recv {
	case "(*regexp.Regexp)", "(*strings.Replacer)", "(*template.Template)",
		"(*sync.Mutex)", "(*sync.RWMutex)", "(*sync.Once)", "(*sync.WaitGroup)":
		return true
	}
	return false
}

// recvTypeDisplay renders a receiver type as "(*pkg.T)" or "(pkg.T)".
func recvTypeDisplay(t types.Type) string {
	star := ""
	if p, ok := t.(*types.Pointer); ok {
		star = "*"
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "(" + star + t.String() + ")"
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return "(" + star + obj.Name() + ")"
	}
	return "(" + star + obj.Pkg().Name() + "." + obj.Name() + ")"
}
