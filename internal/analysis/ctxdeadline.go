package analysis

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
)

// The ctxdeadline analyzer: every RPC — a call of proto.Call or of any
// proto.CallFunc-typed value — must either run inside a retrypolicy
// context (the op closure of (retrypolicy.Policy).Do, directly or
// through a wrapper like datanode.retryDo) or have its error result
// handled. A fire-and-forget RPC (`_, _, _ = dn.call(...)` or a bare
// statement) outside any retry context silently loses transient
// failures that the retry/backoff machinery exists to absorb. The
// deadline half of the contract is carried by construction: CallFunc's
// signature forces a timeout through every call site, and proto.Call
// substitutes DefaultTimeout for zero.
//
// Retry coverage is interprocedural: a function literal passed to Do is
// covered; a function whose every static call site is covered is
// covered; a function that forwards one of its func-typed parameters to
// Do (or to another wrapper) is a wrapper, and arguments at that
// position become covered. Calls through unresolved function values
// other than CallFunc are not tracked (incompleteness, DESIGN.md §11).

// paramKey identifies a func-typed parameter position of a function.
type paramKey struct {
	fn  *types.Func
	idx int
}

// retryCoverage is the fixpoint result: which function literals and
// declared functions execute under a retry policy.
type retryCoverage struct {
	lits  map[*ast.FuncLit]bool
	funcs map[*types.Func]bool
}

func (cov *retryCoverage) site(s *CallSite) bool {
	for _, lit := range s.Lits {
		if cov.lits[lit] {
			return true
		}
	}
	return cov.funcs[s.Fun.Obj]
}

// checkCtxDeadline flags fire-and-forget RPCs outside retry contexts.
func (r *Runner) checkCtxDeadline() {
	cov := r.retryCoverage()
	for _, fi := range r.facts.FuncList {
		for _, site := range fi.Sites {
			if !r.isRPCCall(fi.Pkg, site) {
				continue
			}
			if cov.site(site) {
				continue
			}
			if !r.discardsError(fi, site.Call) {
				continue
			}
			r.report(site.Call.Pos(), RuleCtxDeadline,
				"fire-and-forget RPC: %s discards its error outside any retrypolicy context; run it under Policy.Do (or a wrapper like retryDo) or handle the error",
				exprString(r.mod.Fset, site.Call.Fun))
		}
	}
}

// isRPCCall reports a call of proto.Call or of a proto.CallFunc value.
func (r *Runner) isRPCCall(pkg *Package, site *CallSite) bool {
	if len(site.Callees) == 1 {
		callee := site.Callees[0]
		if callee.Name() == "Call" && pathHasSuffix(callee.Pkg(), "internal/dfs/proto") {
			return true
		}
	}
	if named := namedOf(pkg.Info.TypeOf(site.Call.Fun)); named != nil {
		obj := named.Obj()
		if obj.Name() == "CallFunc" && pathHasSuffix(obj.Pkg(), "internal/dfs/proto") {
			return true
		}
	}
	return false
}

// retryCoverage computes which literals/functions run under a retry
// policy, and which parameter positions forward into one.
func (r *Runner) retryCoverage() *retryCoverage {
	cov := &retryCoverage{
		lits:  make(map[*ast.FuncLit]bool),
		funcs: make(map[*types.Func]bool),
	}
	wrappers := make(map[paramKey]bool)

	// Seed: the op parameter of every Do method in a retrypolicy
	// package (the real module's and the fixture mirror's).
	for fn := range r.facts.Funcs {
		if fn.Name() == "Do" && pathHasSuffix(fn.Pkg(), "internal/retrypolicy") {
			wrappers[paramKey{fn: fn, idx: 0}] = true
		}
	}

	paramIndex := func(fi *FuncInfo, v *types.Var) int {
		sig := fi.Obj.Type().(*types.Signature)
		for i := 0; i < sig.Params().Len(); i++ {
			if sig.Params().At(i) == v {
				return i
			}
		}
		return -1
	}

	markCovered := func(fi *FuncInfo, arg ast.Expr) bool {
		changed := false
		switch arg := unparen(arg).(type) {
		case *ast.FuncLit:
			if !cov.lits[arg] {
				cov.lits[arg] = true
				changed = true
			}
		case *ast.Ident:
			switch obj := fi.Pkg.Info.Uses[arg].(type) {
			case *types.Func:
				if !cov.funcs[obj] {
					cov.funcs[obj] = true
					changed = true
				}
			case *types.Var:
				// Forwarding our own parameter: the enclosing function
				// is itself a wrapper at that position.
				if i := paramIndex(fi, obj); i >= 0 {
					key := paramKey{fn: fi.Obj, idx: i}
					if !wrappers[key] {
						wrappers[key] = true
						changed = true
					}
				}
			}
		case *ast.SelectorExpr:
			if obj, ok := fi.Pkg.Info.Uses[arg.Sel].(*types.Func); ok {
				// Method value (dn.register) handed to the policy.
				if !cov.funcs[obj] {
					cov.funcs[obj] = true
					changed = true
				}
			}
		}
		return changed
	}

	for changed := true; changed; {
		changed = false
		for _, fi := range r.facts.FuncList {
			for _, site := range fi.Sites {
				// Arguments at wrapper positions become covered.
				for _, callee := range site.Callees {
					for i, arg := range site.Call.Args {
						if wrappers[paramKey{fn: callee, idx: i}] && markCovered(fi, arg) {
							changed = true
						}
					}
				}
				// A wrapper may also call its op parameter from inside
				// an already-covered closure (Do(func() error { return op() })).
				if id, ok := unparen(site.Call.Fun).(*ast.Ident); ok && cov.site(site) {
					if v, ok := fi.Pkg.Info.Uses[id].(*types.Var); ok {
						if i := paramIndex(fi, v); i >= 0 {
							key := paramKey{fn: fi.Obj, idx: i}
							if !wrappers[key] {
								wrappers[key] = true
								changed = true
							}
						}
					}
				}
			}
		}
		// A function whose every known call site is covered is covered.
		for _, fi := range r.facts.FuncList {
			if cov.funcs[fi.Obj] {
				continue
			}
			callers := r.facts.CallersOf(fi.Obj)
			if len(callers) == 0 {
				continue
			}
			all := true
			for _, c := range callers {
				if !cov.site(c) {
					all = false
					break
				}
			}
			if all {
				cov.funcs[fi.Obj] = true
				changed = true
			}
		}
	}
	return cov
}

// discardsError reports whether the call's error results all vanish:
// the call is a bare/go/defer statement, or an assignment whose
// error-position targets are all blank.
func (r *Runner) discardsError(fi *FuncInfo, call *ast.CallExpr) bool {
	discarded := false
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if n.X == call {
				discarded = true
			}
		case *ast.GoStmt:
			if n.Call == call {
				discarded = true
			}
		case *ast.DeferStmt:
			if n.Call == call {
				discarded = true
			}
		case *ast.AssignStmt:
			if len(n.Rhs) != 1 || n.Rhs[0] != call {
				return true
			}
			t := fi.Pkg.Info.TypeOf(call)
			errType := types.Universe.Lookup("error").Type()
			all := true
			any := false
			if tuple, ok := t.(*types.Tuple); ok {
				for i := 0; i < tuple.Len() && i < len(n.Lhs); i++ {
					if types.Identical(tuple.At(i).Type(), errType) {
						any = true
						if !isBlank(n.Lhs[i]) {
							all = false
						}
					}
				}
			} else if t != nil && types.Identical(t, errType) && len(n.Lhs) == 1 {
				any = true
				all = isBlank(n.Lhs[0])
			}
			if any && all {
				discarded = true
			}
		}
		return !discarded
	})
	return discarded
}

// exprString renders an expression compactly for messages.
func exprString(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, e); err != nil {
		return "call"
	}
	return buf.String()
}
