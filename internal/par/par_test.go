package par

import (
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(4); got != 4 {
		t.Fatalf("Workers(4) = %d", got)
	}
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS = %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3) = %d, want GOMAXPROCS = %d", got, runtime.GOMAXPROCS(0))
	}
}

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 0} {
		const n = 1000
		counts := make([]atomic.Int32, n)
		ForEach(n, workers, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestForEachSerialRunsInOrder(t *testing.T) {
	var order []int
	ForEach(5, 1, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("serial order = %v", order)
		}
	}
	if len(order) != 5 {
		t.Fatalf("serial ran %d items", len(order))
	}
}

func TestForEachResultsMatchSerial(t *testing.T) {
	const n = 64
	serial := make([]int, n)
	ForEach(n, 1, func(i int) { serial[i] = i * i })
	parallel := make([]int, n)
	ForEach(n, 8, func(i int) { parallel[i] = i * i })
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("slot %d: serial %d, parallel %d", i, serial[i], parallel[i])
		}
	}
}

func TestForEachZeroAndNegative(t *testing.T) {
	ran := false
	ForEach(0, 4, func(int) { ran = true })
	ForEach(-1, 4, func(int) { ran = true })
	if ran {
		t.Fatal("fn ran for n <= 0")
	}
}

func TestFirstError(t *testing.T) {
	e1, e2 := errors.New("one"), errors.New("two")
	if err := FirstError([]error{nil, nil}); err != nil {
		t.Fatalf("FirstError(all nil) = %v", err)
	}
	if err := FirstError([]error{nil, e1, e2}); err != e1 {
		t.Fatalf("FirstError = %v, want %v", err, e1)
	}
	if err := FirstError(nil); err != nil {
		t.Fatalf("FirstError(nil) = %v", err)
	}
}
