// Package par provides the bounded worker pool the experiment sweeps and
// the simulator use to parallelize independent trials.
//
// The pool is deliberately minimal: n index-addressed work items drained
// by an atomic counter, each worker writing results into its item's
// dedicated slot. Because every item owns its slot and computes from its
// index alone, results are positionally deterministic — a parallel run
// produces exactly the slice a serial run produces, in the same order,
// regardless of worker interleaving. Callers keep that guarantee by
// making fn(i) depend only on i and on read-only shared state.
//
//lint:deterministic
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a worker-count knob: values above zero are taken as
// given, anything else means one worker per available CPU.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// ForEach invokes fn(i) for every i in [0, n), using up to `workers`
// concurrent goroutines (normalized via Workers). With one worker the
// items run in order on the calling goroutine, so a serial run is not
// just equivalent to the parallel one but literally the same execution.
func ForEach(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// FirstError returns the error at the lowest index of errs, or nil when
// every slot is nil. Sweeps that collect one error per work item report
// the same error a serial run would have hit first.
func FirstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
