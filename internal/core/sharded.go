package core

import (
	"fmt"

	"aurora/internal/loadindex"
	"aurora/internal/par"
	"aurora/internal/topology"
)

// This file implements the sharded block map: the namespace partitioned
// into N shards keyed by hash(BlockID), each shard owning a full
// Placement (its own sorted block lists, load index and optimizer
// budget share) over the same physical cluster. Per-shard Algorithm-5
// periods run concurrently over internal/par's bounded pool; a cheap
// cross-shard rebalance pass over shard-level load summaries then
// migrates replication budget between shards without touching any
// per-block state.
//
// Sharding is sound at scale because per-shard popularity mass
// concentrates: hashing splits the Zipf head uniformly, so each shard's
// load distribution converges to a scaled copy of the global one (the
// mean-field regime; see PAPERS.md). The payoff is not only concurrency:
// every per-machine sorted list is ~N times shorter, so each local-search
// probe — which walks the source machine's list — costs ~1/N, and the
// replicate phase's heaps and maps shrink below cache-hostile sizes.

// ShardOf maps a block ID to its shard in [0, shards). The hash is the
// splitmix64 finalizer: block IDs are assigned densely, and a plain
// modulus would correlate shard with allocation order (and with the
// popularity rank in traces), defeating the mean-field uniformity the
// design relies on. shards <= 1 always maps to shard 0.
func ShardOf(id BlockID, shards int) int {
	if shards <= 1 {
		return 0
	}
	x := uint64(id)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int(x % uint64(shards))
}

// shardQuota is the per-machine capacity quota each shard's cluster
// carries: an even split of the machine's capacity plus ~50% overcommit
// and a small absolute floor. The overcommit keeps shard-local placement
// feasible under the binomial skew of hash partitioning (a machine's
// replicas split ~Binomial(used, 1/N) across shards, and existing dense
// placements loaded into shards would otherwise overflow the tail
// cells). Per-shard quotas are therefore a soft partition: the global
// capacity invariant is enforced by the replication budget and by the
// datanodes' real capacities, not by the quota sum. shards == 1 keeps
// the exact capacity.
func shardQuota(capacity, shards int) int {
	if shards <= 1 {
		return capacity
	}
	even := (capacity + shards - 1) / shards
	return even + (even+1)/2 + 8
}

// shardCluster derives the per-shard quota cluster from base. All shards
// share one quota cluster: it is immutable and identical for every
// shard. Machine and rack IDs are preserved exactly — the base cluster's
// machines may be interleaved across racks in any order (the namenode
// registers them that way), and a shard-local MachineID must denote the
// same physical machine, or rack spread and capacity would be computed
// against a permutation.
func shardCluster(base *topology.Cluster, shards int) (*topology.Cluster, error) {
	return rebuildCluster(base, func(c int) int { return shardQuota(c, shards) })
}

// rebuildCluster copies base's topology in machine-ID order, mapping
// each machine's capacity through scale.
func rebuildCluster(base *topology.Cluster, scale func(int) int) (*topology.Cluster, error) {
	var b topology.Builder
	rackIDs := make(map[topology.RackID]topology.RackID, len(base.Racks()))
	for _, r := range base.Racks() {
		rackIDs[r] = b.AddRack()
	}
	for _, m := range base.Machines() {
		mach := base.MustMachine(m)
		mid, err := b.AddMachine(rackIDs[mach.Rack], scale(mach.Capacity), mach.Slots)
		if err != nil {
			return nil, err
		}
		if mid != m {
			return nil, fmt.Errorf("core: shard cluster id mismatch: %d vs %d", mid, m)
		}
	}
	return b.Build()
}

// ShardedPlacement partitions a block map into N independent Placements
// keyed by ShardOf. With one shard it wraps a single Placement over the
// base cluster, bit-identical to the unsharded path. Like Placement it
// is not safe for concurrent use — except that distinct shards may be
// mutated concurrently (they share no mutable state), which is exactly
// what OptimizeSharded does.
type ShardedPlacement struct {
	base   *topology.Cluster
	shards []*Placement
	// shares is the optimizer state each period's rebalance pass updates:
	// how the extra replication budget (β minus the sum of minimum
	// factors) is apportioned across shards. nil until the first period;
	// see rebalanceShares.
	shares []int
}

// NewShardedPlacement creates an empty sharded placement over base with
// the given shard count (values below 1 are treated as 1) and registers
// the specs, routing each block to its hash shard.
func NewShardedPlacement(base *topology.Cluster, shards int, specs []BlockSpec) (*ShardedPlacement, error) {
	if shards < 1 {
		shards = 1
	}
	sp := &ShardedPlacement{base: base}
	if shards == 1 {
		p, err := NewPlacement(base, specs)
		if err != nil {
			return nil, err
		}
		sp.shards = []*Placement{p}
		return sp, nil
	}
	qc, err := shardCluster(base, shards)
	if err != nil {
		return nil, fmt.Errorf("core: shard cluster: %w", err)
	}
	perShard := make([][]BlockSpec, shards)
	for _, s := range specs {
		sh := ShardOf(s.ID, shards)
		perShard[sh] = append(perShard[sh], s)
	}
	sp.shards = make([]*Placement, shards)
	for i := range sp.shards {
		p, err := NewPlacement(qc, perShard[i])
		if err != nil {
			return nil, err
		}
		sp.shards[i] = p
	}
	return sp, nil
}

// NumShards reports the shard count.
func (sp *ShardedPlacement) NumShards() int { return len(sp.shards) }

// Base returns the physical cluster the sharded placement is defined
// over (shards internally use quota clusters; see shardQuota).
func (sp *ShardedPlacement) Base() *topology.Cluster { return sp.base }

// ShardIndex returns the shard owning block id.
func (sp *ShardedPlacement) ShardIndex(id BlockID) int { return ShardOf(id, len(sp.shards)) }

// Shard returns shard i's Placement for direct (single-shard) use.
func (sp *ShardedPlacement) Shard(i int) *Placement { return sp.shards[i] }

// For returns the Placement owning block id.
func (sp *ShardedPlacement) For(id BlockID) *Placement {
	return sp.shards[sp.ShardIndex(id)]
}

// AddBlock registers a new block in its hash shard.
func (sp *ShardedPlacement) AddBlock(s BlockSpec) error { return sp.For(s.ID).AddBlock(s) }

// DeleteBlock removes a block and its replicas from its hash shard.
func (sp *ShardedPlacement) DeleteBlock(id BlockID) error { return sp.For(id).DeleteBlock(id) }

// NumBlocks reports the number of registered blocks across all shards.
func (sp *ShardedPlacement) NumBlocks() int {
	n := 0
	for _, p := range sp.shards {
		n += p.NumBlocks()
	}
	return n
}

// TotalReplicas reports Σ_i k_i across all shards.
func (sp *ShardedPlacement) TotalReplicas() int {
	n := 0
	for _, p := range sp.shards {
		n += p.TotalReplicas()
	}
	return n
}

// AppendLoads appends the aggregated per-machine load vector — each
// machine's load summed across shards, in shard order — and returns the
// extended slice. This is the shard-level load summary the rebalance
// pass and the telemetry exporters consume.
func (sp *ShardedPlacement) AppendLoads(buf []float64) []float64 {
	start := len(buf)
	for i := 0; i < sp.base.NumMachines(); i++ {
		buf = append(buf, 0)
	}
	for _, p := range sp.shards {
		agg := buf[start:]
		for m := range agg {
			agg[m] += p.Load(topology.MachineID(m))
		}
	}
	return buf
}

// Used reports the number of replicas machine m stores across all
// shards.
func (sp *ShardedPlacement) Used(m topology.MachineID) int {
	n := 0
	for _, p := range sp.shards {
		n += p.Used(m)
	}
	return n
}

// GlobalCost returns the global objective λ: the maximum per-machine
// load aggregated across shards. With one shard it equals Cost() of the
// underlying placement.
func (sp *ShardedPlacement) GlobalCost() float64 {
	if len(sp.shards) == 1 {
		return sp.shards[0].Cost()
	}
	max, _ := loadindex.MaxMean(sp.AppendLoads(nil))
	return max
}

// ShardCosts appends each shard's local objective λ_s (its own maximum
// machine load) in shard order.
func (sp *ShardedPlacement) ShardCosts(buf []float64) []float64 {
	for _, p := range sp.shards {
		buf = append(buf, p.Cost())
	}
	return buf
}

// Shares returns the stored cross-shard budget apportionment (nil before
// the first optimized period).
func (sp *ShardedPlacement) Shares() []int {
	if sp.shares == nil {
		return nil
	}
	return append([]int(nil), sp.shares...)
}

// SetShares seeds the apportionment — for callers that rebuild a sharded
// view every period (e.g. the simulator's policy) yet want the rebalance
// state to carry across rebuilds. A share slice of the wrong length is
// ignored at the next budget split, so stale state degrades to the
// popularity-weighted default rather than corrupting the split.
func (sp *ShardedPlacement) SetShares(shares []int) {
	if shares == nil {
		sp.shares = nil
		return
	}
	sp.shares = append([]int(nil), shares...)
}

// Clone deep-copies the sharded placement, including the budget-share
// state.
func (sp *ShardedPlacement) Clone() *ShardedPlacement {
	c := &ShardedPlacement{
		base:   sp.base,
		shards: make([]*Placement, len(sp.shards)),
	}
	for i, p := range sp.shards {
		c.shards[i] = p.Clone()
	}
	if sp.shares != nil {
		c.shares = append([]int(nil), sp.shares...)
	}
	return c
}

// Merge flattens all shards into one Placement. With one shard this is a
// plain Clone of the underlying placement (over the base cluster, bit-
// identical). With several, the merged placement is built over the quota
// cluster scaled to the quota sum, since a machine's aggregate use may
// legitimately exceed an even capacity split (see shardQuota); the merge
// is a read-only inspection view (fsck, budget resolution, tests), never
// the operational block map.
func (sp *ShardedPlacement) Merge() (*Placement, error) {
	if len(sp.shards) == 1 {
		return sp.shards[0].Clone(), nil
	}
	mc, err := rebuildCluster(sp.base, func(c int) int {
		return shardQuota(c, len(sp.shards)) * len(sp.shards)
	})
	if err != nil {
		return nil, err
	}
	var specs []BlockSpec
	for _, p := range sp.shards {
		for _, id := range p.Blocks() {
			s, err := p.Spec(id)
			if err != nil {
				return nil, err
			}
			specs = append(specs, s)
		}
	}
	merged, err := NewPlacement(mc, specs)
	if err != nil {
		return nil, err
	}
	var holders []topology.MachineID
	for _, p := range sp.shards {
		for _, id := range p.Blocks() {
			holders = p.AppendReplicas(id, holders[:0])
			for _, m := range holders {
				if err := merged.AddReplica(id, m); err != nil {
					return nil, fmt.Errorf("core: merging shard replica: %w", err)
				}
			}
		}
	}
	return merged, nil
}

// Validate checks every shard's internal invariants plus the routing
// invariant: each block lives in exactly the shard its hash selects
// (which also implies no block is registered in two shards).
func (sp *ShardedPlacement) Validate() error {
	for i, p := range sp.shards {
		if err := p.Validate(); err != nil {
			return fmt.Errorf("core: shard %d: %w", i, err)
		}
		for _, id := range p.Blocks() {
			if sh := ShardOf(id, len(sp.shards)); sh != i {
				return fmt.Errorf("core: block %d registered in shard %d, hashes to %d", id, i, sh)
			}
		}
	}
	return nil
}

// ShardedOptimizerOptions configure one sharded Algorithm-5 period.
type ShardedOptimizerOptions struct {
	// Opts are the global period knobs. ReplicationBudget is the global
	// β; MaxReplicationMoves and MaxSearchIterations are global caps,
	// split across shards (even split, remainder to low shards; the
	// budget split follows the rebalanced shares). Observers fire after
	// the concurrent phase, replayed in shard order, so they see a
	// deterministic sequence and need not be concurrency-safe.
	Opts OptimizerOptions
	// Workers bounds the concurrent per-shard periods; 0 means one per
	// available CPU (par.Workers).
	Workers int
	// Now, when set, timestamps each shard's period (nanoseconds) into
	// PerShardWallNanos for telemetry. The clock is threaded explicitly
	// so this package stays deterministic; nil leaves the wall times
	// zero.
	Now func() int64
}

// ShardedOptimizeResult aggregates one sharded period.
type ShardedOptimizeResult struct {
	// PerShard holds each shard's own period result, in shard order.
	PerShard []OptimizeResult
	// Replications and Evictions sum the per-shard counts.
	Replications int
	Evictions    int
	// Search sums the per-shard operation counts; its InitialCost and
	// FinalCost are the global λ (per-machine load aggregated across
	// shards) before and after the period.
	Search SearchResult
	// Imbalance is max/mean over the shards' local objectives λ_s after
	// the period — the cross-shard imbalance statistic.
	Imbalance float64
	// Shares is the extra-budget apportionment used this period;
	// NextShares is the rebalanced apportionment the next period will
	// use. Both are nil when dynamic replication is disabled.
	Shares     []int
	NextShares []int
	// PerShardWallNanos is each shard's period wall time when the caller
	// supplied a clock (see ShardedOptimizerOptions.Now); nil otherwise.
	PerShardWallNanos []int64
}

// OptimizeSharded runs one Algorithm-5 period on every shard
// concurrently, then the cross-shard rebalance pass. With one shard it
// delegates to Optimize directly — same code path, bit-identical
// results. The placement is modified in place.
func OptimizeSharded(sp *ShardedPlacement, opts ShardedOptimizerOptions) (ShardedOptimizeResult, error) {
	n := len(sp.shards)
	if n == 1 {
		var t0 int64
		if opts.Now != nil {
			t0 = opts.Now()
		}
		res, err := Optimize(sp.shards[0], opts.Opts)
		if err != nil {
			return ShardedOptimizeResult{}, err
		}
		out := ShardedOptimizeResult{
			PerShard:     []OptimizeResult{res},
			Replications: res.Replications,
			Evictions:    res.Evictions,
			Search:       res.Search,
			Imbalance:    1,
		}
		if opts.Now != nil {
			out.PerShardWallNanos = []int64{opts.Now() - t0}
		}
		return out, nil
	}

	var out ShardedOptimizeResult
	out.Search.InitialCost = sp.GlobalCost()

	perShard := make([]OptimizerOptions, n)
	for i := range perShard {
		perShard[i] = opts.Opts
		perShard[i].MaxSearchIterations = splitCap(opts.Opts.MaxSearchIterations, n, i)
		perShard[i].MaxReplicationMoves = splitCap(opts.Opts.MaxReplicationMoves, n, i)
	}
	if opts.Opts.ReplicationBudget > 0 {
		shares, err := sp.budgetShares(opts.Opts.ReplicationBudget)
		if err != nil {
			return out, err
		}
		out.Shares = shares
		for i := range perShard {
			perShard[i].ReplicationBudget = sp.shardMinBudget(i) + shares[i]
		}
	}

	// Observers must not fire from worker goroutines: buffer each
	// shard's events and replay them in shard order afterwards, so the
	// caller sees one deterministic sequence.
	logs := make([][]shardEvent, n)
	buffer := opts.Opts.OnReplicate != nil || opts.Opts.OnEvict != nil || opts.Opts.OnOp != nil
	if buffer {
		for i := range perShard {
			i := i
			perShard[i].OnReplicate = func(id BlockID, from, to topology.MachineID) {
				logs[i] = append(logs[i], shardEvent{kind: evReplicate, block: id, from: from, to: to})
			}
			perShard[i].OnEvict = func(id BlockID, m topology.MachineID) {
				logs[i] = append(logs[i], shardEvent{kind: evEvict, block: id, from: m})
			}
			perShard[i].OnOp = func(op Op) {
				logs[i] = append(logs[i], shardEvent{kind: evOp, op: op})
			}
		}
	}

	out.PerShard = make([]OptimizeResult, n)
	if opts.Now != nil {
		out.PerShardWallNanos = make([]int64, n)
	}
	errs := make([]error, n)
	par.ForEach(n, opts.Workers, func(i int) {
		var t0 int64
		if opts.Now != nil {
			t0 = opts.Now()
		}
		out.PerShard[i], errs[i] = Optimize(sp.shards[i], perShard[i])
		if opts.Now != nil {
			out.PerShardWallNanos[i] = opts.Now() - t0
		}
	})
	if err := par.FirstError(errs); err != nil {
		return out, err
	}
	if buffer {
		for i := range logs {
			for _, ev := range logs[i] {
				switch ev.kind {
				case evReplicate:
					opts.Opts.OnReplicate(ev.block, ev.from, ev.to)
				case evEvict:
					opts.Opts.OnEvict(ev.block, ev.from)
				case evOp:
					opts.Opts.OnOp(ev.op)
				}
			}
		}
	}

	costs := make([]float64, 0, n)
	for i, r := range out.PerShard {
		out.Replications += r.Replications
		out.Evictions += r.Evictions
		out.Search.Iterations += r.Search.Iterations
		out.Search.Movements += r.Search.Movements
		out.Search.Moves += r.Search.Moves
		out.Search.Swaps += r.Search.Swaps
		out.Search.RackMoves += r.Search.RackMoves
		out.Search.RackSwaps += r.Search.RackSwaps
		costs = append(costs, sp.shards[i].Cost())
	}
	out.Search.FinalCost = sp.GlobalCost()
	out.Imbalance = loadindex.Imbalance(costs)

	if opts.Opts.ReplicationBudget > 0 {
		out.NextShares = sp.rebalanceShares(opts.Opts.ReplicationBudget, out.PerShard)
		sp.shares = out.NextShares
	}
	return out, nil
}

// Event kinds for the buffered observer replay.
const (
	evReplicate = iota
	evEvict
	evOp
)

type shardEvent struct {
	kind     int
	op       Op
	block    BlockID
	from, to topology.MachineID
}

// splitCap splits a global cap evenly across n shards, remainder to the
// low shard indexes. Zero (unbounded) stays unbounded for every shard.
func splitCap(total, n, i int) int {
	if total <= 0 {
		return 0
	}
	q, r := total/n, total%n
	if i < r {
		return q + 1
	}
	return q
}

// shardMinBudget is Σ MinReplicas over shard i's blocks — the floor any
// budget split must respect (Algorithm 3 rejects budgets below it).
func (sp *ShardedPlacement) shardMinBudget(i int) int {
	min := 0
	p := sp.shards[i]
	for _, id := range p.Blocks() {
		s, err := p.Spec(id)
		if err == nil {
			min += s.MinReplicas
		}
	}
	return min
}

// budgetShares apportions the extra budget (β minus the global minimum
// sum) across shards: the stored rebalanced shares if a previous period
// set them, otherwise proportional to each shard's popularity mass.
func (sp *ShardedPlacement) budgetShares(budget int) ([]int, error) {
	n := len(sp.shards)
	minSum := 0
	for i := range sp.shards {
		minSum += sp.shardMinBudget(i)
	}
	extra := budget - minSum
	if extra < 0 {
		return nil, fmt.Errorf("%w: need %d, budget %d", ErrBudgetTooSmall, minSum, budget)
	}
	if sp.shares != nil && len(sp.shares) == n {
		return apportion(extra, sharesToWeights(sp.shares)), nil
	}
	weights := make([]float64, n)
	for i, p := range sp.shards {
		mass := 0.0
		for _, id := range p.Blocks() {
			if s, err := p.Spec(id); err == nil {
				mass += s.Popularity
			}
		}
		weights[i] = mass
	}
	return apportion(extra, weights), nil
}

// rebalanceShares is the cross-shard rebalance pass: reapportion the
// extra budget proportionally to each shard's post-period objective ω_s
// (its maximum per-replica popularity). A shard still pinned at high
// per-replica popularity converts budget into the largest objective
// reduction, so budget migrates toward it next period — using only the
// per-shard summaries, never per-block state.
func (sp *ShardedPlacement) rebalanceShares(budget int, results []OptimizeResult) []int {
	n := len(sp.shards)
	minSum := 0
	for i := range sp.shards {
		minSum += sp.shardMinBudget(i)
	}
	extra := budget - minSum
	if extra < 0 {
		extra = 0
	}
	weights := make([]float64, n)
	for i, p := range sp.shards {
		weights[i] = p.MaxPerReplicaPopularity()
	}
	return apportion(extra, weights)
}

// sharesToWeights reuses integer shares as apportionment weights.
func sharesToWeights(shares []int) []float64 {
	w := make([]float64, len(shares))
	for i, s := range shares {
		w[i] = float64(s)
	}
	return w
}

// apportion splits total units proportionally to weights using the
// largest-remainder method, deterministically: floors first, then the
// remainder to the largest fractional parts (ties toward the lower
// shard index). Non-positive or zero-sum weights fall back to an even
// split.
func apportion(total int, weights []float64) []int {
	n := len(weights)
	out := make([]int, n)
	if total <= 0 {
		return out
	}
	sum := 0.0
	for _, w := range weights {
		if w > 0 {
			sum += w
		}
	}
	if sum <= 0 {
		for i := range out {
			out[i] = splitCap(total, n, i)
		}
		return out
	}
	type frac struct {
		idx int
		rem float64
	}
	fracs := make([]frac, n)
	given := 0
	for i, w := range weights {
		if w < 0 {
			w = 0
		}
		exact := float64(total) * w / sum
		out[i] = int(exact)
		given += out[i]
		fracs[i] = frac{idx: i, rem: exact - float64(out[i])}
	}
	// Insertion sort by descending remainder, ties toward low index:
	// n is the shard count, so quadratic is fine and allocation-free.
	before := func(a, b frac) bool {
		if a.rem > b.rem {
			return true
		}
		if a.rem < b.rem {
			return false
		}
		return a.idx < b.idx
	}
	for i := 1; i < n; i++ {
		f := fracs[i]
		j := i
		for j > 0 && before(f, fracs[j-1]) {
			fracs[j] = fracs[j-1]
			j--
		}
		fracs[j] = f
	}
	for i := 0; given < total; i++ {
		out[fracs[i%n].idx]++
		given++
	}
	return out
}
