package core

import (
	"math/rand/v2"
	"testing"

	"aurora/internal/topology"
)

func TestOptimizeWithoutBudgetIsPureSearch(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 21))
	cl := mustCluster(t, 2, 3, 20)
	specs := randomSpecs(rng, 20, 2, 2, 30)
	p := rackRandomPlacement(t, cl, specs, rng)
	counts := make(map[BlockID]int)
	for _, id := range p.Blocks() {
		counts[id] = p.ReplicaCount(id)
	}
	res, err := Optimize(p, OptimizerOptions{RackAware: true})
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if res.Targets != nil {
		t.Errorf("Targets = %v, want nil with no budget", res.Targets)
	}
	if res.Replications != 0 {
		t.Errorf("Replications = %d, want 0", res.Replications)
	}
	for id, k := range counts {
		if got := p.ReplicaCount(id); got != k {
			t.Errorf("block %d count changed %d -> %d without budget", id, k, got)
		}
	}
}

func TestOptimizeReplicatesHotBlocks(t *testing.T) {
	rng := rand.New(rand.NewPCG(22, 22))
	cl := mustCluster(t, 2, 4, 50)
	specs := []BlockSpec{
		spec(1, 1000, 3, 2), // very hot
		spec(2, 10, 3, 2),
		spec(3, 10, 3, 2),
	}
	p := rackRandomPlacement(t, cl, specs, rng)
	res, err := Optimize(p, OptimizerOptions{
		RackAware:         true,
		ReplicationBudget: 12, // 9 minimum + 3 extra
	})
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if res.Targets[1] != 6 {
		t.Errorf("hot block target = %d, want 6 (all extra budget)", res.Targets[1])
	}
	if got := p.ReplicaCount(1); got != 6 {
		t.Errorf("hot block replica count = %d, want 6", got)
	}
	if res.Replications != 3 {
		t.Errorf("Replications = %d, want 3", res.Replications)
	}
	if err := p.CheckFeasible(); err != nil {
		t.Errorf("CheckFeasible: %v", err)
	}
	if err := p.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestOptimizeHonoursKBound(t *testing.T) {
	rng := rand.New(rand.NewPCG(23, 23))
	cl := mustCluster(t, 2, 4, 50)
	specs := []BlockSpec{
		spec(1, 1000, 3, 2),
		spec(2, 500, 3, 2),
	}
	p := rackRandomPlacement(t, cl, specs, rng)
	res, err := Optimize(p, OptimizerOptions{
		RackAware:           true,
		ReplicationBudget:   20,
		MaxReplicationMoves: 2, // K
	})
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if res.Replications > 2 {
		t.Errorf("Replications = %d, want <= K=2", res.Replications)
	}
}

func TestOptimizeObserversFire(t *testing.T) {
	rng := rand.New(rand.NewPCG(24, 24))
	cl := mustCluster(t, 2, 4, 50)
	specs := []BlockSpec{spec(1, 1000, 3, 2), spec(2, 5, 3, 2)}
	p := rackRandomPlacement(t, cl, specs, rng)
	var reps int
	res, err := Optimize(p, OptimizerOptions{
		RackAware:         true,
		ReplicationBudget: 10,
		OnReplicate: func(id BlockID, src, dst topology.MachineID) {
			reps++
			if id != 1 {
				t.Errorf("replicated block %d, want only hot block 1", id)
			}
			if src == topology.NoMachine {
				t.Error("replication source missing for placed block")
			}
			if dst == topology.NoMachine {
				t.Error("replication destination missing")
			}
		},
	})
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if reps != res.Replications {
		t.Errorf("observer saw %d replications, result says %d", reps, res.Replications)
	}
}

func TestOptimizeLazyEvictionUnderCapacityPressure(t *testing.T) {
	// Tiny cluster at full capacity. The optimizer wants to replicate
	// the hot block; it must evict a cold surplus replica first.
	cl := mustCluster(t, 1, 3, 2) // 3 machines x 2 slots = 6 replica slots
	p := mustPlacement(t, cl, []BlockSpec{
		spec(1, 1000, 1, 1),
		spec(2, 1, 1, 1),
	})
	// Block 2 over-provisioned at 3 replicas; block 1 at 1; total 4.
	for _, m := range []topology.MachineID{0, 1, 2} {
		if err := p.AddReplica(2, m); err != nil {
			t.Fatalf("AddReplica: %v", err)
		}
	}
	if err := p.AddReplica(1, 0); err != nil {
		t.Fatalf("AddReplica: %v", err)
	}
	// Fill every remaining slot with a third cold block so the cluster
	// is at capacity.
	if err := p.AddBlock(spec(3, 1, 1, 1)); err != nil {
		t.Fatalf("AddBlock: %v", err)
	}
	if err := p.AddReplica(3, 1); err != nil {
		t.Fatalf("AddReplica: %v", err)
	}
	if err := p.AddReplica(3, 2); err != nil {
		t.Fatalf("AddReplica: %v", err)
	}

	evictions := 0
	res, err := Optimize(p, OptimizerOptions{
		ReplicationBudget: 6,
		OnEvict:           func(BlockID, topology.MachineID) { evictions++ },
	})
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if res.Evictions == 0 || evictions != res.Evictions {
		t.Errorf("Evictions = %d (observer %d), want > 0 and equal", res.Evictions, evictions)
	}
	if got := p.ReplicaCount(1); got < 2 {
		t.Errorf("hot block count = %d, want >= 2 after eviction made room", got)
	}
	// Eviction must never break feasibility.
	if err := p.CheckFeasible(); err != nil {
		t.Errorf("CheckFeasible: %v", err)
	}
	if err := p.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestOptimizeReducesCostEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewPCG(25, 25))
	cl := mustCluster(t, 3, 5, 60)
	// Zipf-ish popularity: few hot blocks.
	var specs []BlockSpec
	for i := 0; i < 60; i++ {
		pop := float64(1)
		if i < 3 {
			pop = 500
		} else if i < 10 {
			pop = 50
		}
		specs = append(specs, spec(BlockID(i+1), pop, 3, 2))
	}
	p := rackRandomPlacement(t, cl, specs, rng)
	before := p.Cost()
	res, err := Optimize(p, OptimizerOptions{
		Epsilon:           0.05,
		RackAware:         true,
		ReplicationBudget: 60*3 + 30,
	})
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if p.Cost() >= before {
		t.Errorf("Optimize did not reduce cost: %v -> %v", before, p.Cost())
	}
	if res.Search.FinalCost != p.Cost() {
		t.Errorf("search FinalCost %v != placement cost %v", res.Search.FinalCost, p.Cost())
	}
	if err := p.CheckFeasible(); err != nil {
		t.Errorf("CheckFeasible: %v", err)
	}
	if err := p.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestOptimizeMaxSearchIterations(t *testing.T) {
	rng := rand.New(rand.NewPCG(31, 31))
	cl := mustCluster(t, 2, 4, 100)
	specs := randomSpecs(rng, 60, 2, 2, 40)
	p := rackRandomPlacement(t, cl, specs, rng)
	res, err := Optimize(p, OptimizerOptions{
		RackAware:           true,
		MaxSearchIterations: 2,
	})
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if res.Search.Iterations > 2 {
		t.Errorf("search ran %d iterations, cap was 2", res.Search.Iterations)
	}
}

func TestOptimizeMaxPerBlockOption(t *testing.T) {
	rng := rand.New(rand.NewPCG(32, 32))
	cl := mustCluster(t, 2, 4, 100)
	specs := []BlockSpec{spec(1, 1000, 3, 2), spec(2, 1, 3, 2)}
	p := rackRandomPlacement(t, cl, specs, rng)
	res, err := Optimize(p, OptimizerOptions{
		RackAware:         true,
		ReplicationBudget: 20,
		MaxPerBlock:       4,
	})
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if res.Targets[1] > 4 {
		t.Errorf("target %d exceeds MaxPerBlock 4", res.Targets[1])
	}
	if got := p.ReplicaCount(1); got > 4 {
		t.Errorf("hot block has %d replicas, cap was 4", got)
	}
}

func TestOptimizeIdempotentWhenConverged(t *testing.T) {
	rng := rand.New(rand.NewPCG(33, 33))
	cl := mustCluster(t, 2, 4, 100)
	specs := randomSpecs(rng, 30, 3, 2, 40)
	p := rackRandomPlacement(t, cl, specs, rng)
	budget := p.TotalReplicas() + 30
	opts := OptimizerOptions{Epsilon: 0.1, RackAware: true, ReplicationBudget: budget}
	if _, err := Optimize(p, opts); err != nil {
		t.Fatalf("first Optimize: %v", err)
	}
	second, err := Optimize(p, opts)
	if err != nil {
		t.Fatalf("second Optimize: %v", err)
	}
	// Same popularity, already optimized: the second period must be a
	// near no-op (no replications; the search finds nothing admissible).
	if second.Replications != 0 {
		t.Errorf("second period replicated %d blocks", second.Replications)
	}
	if second.Search.Iterations != 0 {
		t.Errorf("second period performed %d search ops", second.Search.Iterations)
	}
}
