package core

import (
	"errors"
	"math"
	"math/rand/v2"
	"testing"
)

func TestRepFactorSpreadsBudgetByPopularity(t *testing.T) {
	specs := []BlockSpec{
		spec(1, 100, 1, 1),
		spec(2, 10, 1, 1),
		spec(3, 1, 1, 1),
	}
	res, err := ComputeReplicationFactors(specs, 13, 100, 0)
	if err != nil {
		t.Fatalf("ComputeReplicationFactors: %v", err)
	}
	if res.BudgetUsed != 13 {
		t.Errorf("BudgetUsed = %d, want 13 (Lemma 7: budget saturated)", res.BudgetUsed)
	}
	// Optimal levelling of max(100/k1, 10/k2, 1/k3) with k1+k2+k3=13:
	// k=(11,1,1) gives max=10; (10,2,1) gives max=10; (11,1,1) objective
	// 100/11≈9.09 vs 10/1=10 → max 10. Best is k1=10,k2=2,k3=1: max(10,5,1)=10
	// or k1=11,k2=1: max(9.09,10,1)=10. Either way objective 10... can we
	// beat 10? k1=9,k2=3,k3=1: max(11.1,3.3,1)=11.1 worse. So OPT=10.
	if math.Abs(res.Objective-10) > 1e-9 {
		t.Errorf("Objective = %v, want 10", res.Objective)
	}
	if res.Factors[1] < res.Factors[2] || res.Factors[2] < res.Factors[3] {
		t.Errorf("factors not ordered by popularity: %v", res.Factors)
	}
}

func TestRepFactorRespectsMinimums(t *testing.T) {
	specs := []BlockSpec{
		spec(1, 100, 3, 2),
		spec(2, 0, 3, 2),
	}
	res, err := ComputeReplicationFactors(specs, 10, 100, 0)
	if err != nil {
		t.Fatalf("ComputeReplicationFactors: %v", err)
	}
	if res.Factors[2] < 3 {
		t.Errorf("block 2 factor %d dropped below its minimum 3", res.Factors[2])
	}
	if res.Factors[1] != 7 {
		t.Errorf("block 1 factor = %d, want 7 (all spare budget)", res.Factors[1])
	}
}

func TestRepFactorBudgetErrors(t *testing.T) {
	specs := []BlockSpec{spec(1, 5, 3, 1)}
	if _, err := ComputeReplicationFactors(specs, 2, 100, 0); !errors.Is(err, ErrBudgetTooSmall) {
		t.Errorf("budget below minimums err = %v, want ErrBudgetTooSmall", err)
	}
	if _, err := ComputeReplicationFactors(specs, 0, 100, 0); !errors.Is(err, ErrBadBudget) {
		t.Errorf("zero budget err = %v, want ErrBadBudget", err)
	}
	if _, err := ComputeReplicationFactors(specs, 5, 0, 0); !errors.Is(err, ErrBadBudget) {
		t.Errorf("zero maxPerBlock err = %v, want ErrBadBudget", err)
	}
	if _, err := ComputeReplicationFactors(specs, 5, 2, 0); !errors.Is(err, ErrBadBudget) {
		t.Errorf("minReplicas above maxPerBlock err = %v, want ErrBadBudget", err)
	}
	dup := []BlockSpec{spec(1, 5, 1, 1), spec(1, 6, 1, 1)}
	if _, err := ComputeReplicationFactors(dup, 10, 100, 0); !errors.Is(err, ErrDuplicateBlock) {
		t.Errorf("duplicate err = %v, want ErrDuplicateBlock", err)
	}
}

func TestRepFactorMaxPerBlockCap(t *testing.T) {
	specs := []BlockSpec{spec(1, 1000, 1, 1), spec(2, 1, 1, 1)}
	res, err := ComputeReplicationFactors(specs, 100, 4, 0)
	if err != nil {
		t.Fatalf("ComputeReplicationFactors: %v", err)
	}
	if res.Factors[1] != 4 {
		t.Errorf("block 1 factor = %d, want cap 4", res.Factors[1])
	}
	if math.Abs(res.Objective-250) > 1e-9 {
		t.Errorf("Objective = %v, want 250 (capped)", res.Objective)
	}
}

func TestRepFactorIterationCap(t *testing.T) {
	specs := []BlockSpec{spec(1, 1000, 1, 1), spec(2, 500, 1, 1)}
	res, err := ComputeReplicationFactors(specs, 100, 100, 3)
	if err != nil {
		t.Fatalf("ComputeReplicationFactors: %v", err)
	}
	if res.Iterations > 3 {
		t.Errorf("Iterations = %d, want <= 3", res.Iterations)
	}
	if res.BudgetUsed != 2+3 {
		t.Errorf("BudgetUsed = %d, want 5 (2 minimums + 3 increments)", res.BudgetUsed)
	}
}

func TestRepFactorEqualPopularityTerminates(t *testing.T) {
	// Regression guard: with the paper's non-strict donor inequality,
	// two equal blocks could trade a replica forever.
	specs := []BlockSpec{spec(1, 50, 1, 1), spec(2, 50, 1, 1)}
	res, err := ComputeReplicationFactors(specs, 5, 100, 0)
	if err != nil {
		t.Fatalf("ComputeReplicationFactors: %v", err)
	}
	// Budget 5 over two equal blocks: (3,2) or (2,3) → objective 25.
	if math.Abs(res.Objective-25) > 1e-9 {
		t.Errorf("Objective = %v, want 25", res.Objective)
	}
	if res.Factors[1]+res.Factors[2] != 5 {
		t.Errorf("budget not saturated: %v", res.Factors)
	}
}

// Theorem 8: Algorithm 3 solves Rep-Factor optimally. Verify against
// exhaustive enumeration on random small instances.
func TestRepFactorOptimality(t *testing.T) {
	for seed := uint64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewPCG(seed, seed*31+7))
		n := rng.IntN(4) + 2
		budgetExtra := rng.IntN(6)
		maxPer := rng.IntN(4) + 2
		specs := make([]BlockSpec, n)
		minSum := 0
		for i := range specs {
			low := rng.IntN(2) + 1
			specs[i] = BlockSpec{
				ID:          BlockID(i + 1),
				Popularity:  float64(rng.IntN(100) + 1),
				MinReplicas: low,
				MinRacks:    1,
			}
			minSum += low
		}
		budget := minSum + budgetExtra
		got, err := ComputeReplicationFactors(specs, budget, maxPer, 0)
		if err != nil {
			if errors.Is(err, ErrBadBudget) {
				continue // MinReplicas 2 with maxPer < 2 can't happen (maxPer>=2), but be safe
			}
			t.Fatalf("seed %d: %v", seed, err)
		}
		want := exhaustiveRepFactor(specs, budget, maxPer)
		if math.Abs(got.Objective-want) > 1e-9 {
			t.Errorf("seed %d: objective %v, optimal %v (factors %v)", seed, got.Objective, want, got.Factors)
		}
	}
}

// exhaustiveRepFactor brute-forces the Rep-Factor optimum.
func exhaustiveRepFactor(specs []BlockSpec, budget, maxPer int) float64 {
	best := math.Inf(1)
	ks := make([]int, len(specs))
	var rec func(i, used int)
	rec = func(i, used int) {
		if used > budget {
			return
		}
		if i == len(specs) {
			obj := 0.0
			for j, s := range specs {
				if v := s.Popularity / float64(ks[j]); v > obj {
					obj = v
				}
			}
			if obj < best {
				best = obj
			}
			return
		}
		for k := specs[i].MinReplicas; k <= maxPer; k++ {
			ks[i] = k
			rec(i+1, used+k)
		}
	}
	rec(0, 0)
	return best
}

func TestRepFactorZeroPopularityBlocksStayAtMinimum(t *testing.T) {
	specs := []BlockSpec{spec(1, 0, 3, 1), spec(2, 0, 3, 1)}
	res, err := ComputeReplicationFactors(specs, 100, 10, 0)
	if err != nil {
		t.Fatalf("ComputeReplicationFactors: %v", err)
	}
	if res.Objective != 0 {
		t.Errorf("Objective = %v, want 0", res.Objective)
	}
	// With objective already 0, extra replication is pointless but
	// harmless; factors must never drop below minimums.
	for id, k := range res.Factors {
		if k < 3 {
			t.Errorf("block %d factor %d < minimum 3", id, k)
		}
	}
}
