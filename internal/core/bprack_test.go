package core

import (
	"math/rand/v2"
	"testing"

	"aurora/internal/topology"
)

// rackRandomPlacement places each block randomly but feasibly: first two
// replicas in distinct racks when rho >= 2.
func rackRandomPlacement(t *testing.T, cl *topology.Cluster, specs []BlockSpec, rng *rand.Rand) *Placement {
	t.Helper()
	p := mustPlacement(t, cl, specs)
	for _, s := range specs {
		if err := InitialPlaceRandomized(p, s.ID, s.MinReplicas, rng); err != nil {
			t.Fatalf("random placement of block %d: %v", s.ID, err)
		}
	}
	return p
}

// InitialPlaceRandomized is a test helper: place k replicas at random
// machines while honouring rack spread. Exported-style name kept local to
// tests via this file.
func InitialPlaceRandomized(p *Placement, id BlockID, k int, rng *rand.Rand) error {
	spec, err := p.Spec(id)
	if err != nil {
		return err
	}
	machines := p.Cluster().Machines()
	for attempts := 0; p.ReplicaCount(id) < k && attempts < 20000; attempts++ {
		m := machines[rng.IntN(len(machines))]
		if p.HasReplica(id, m) || p.FreeCapacity(m) == 0 {
			continue
		}
		// Honour spread greedily: while below MinRacks, only accept new racks.
		if p.RackSpread(id) < spec.MinRacks && p.ReplicaCount(id) >= p.RackSpread(id) {
			r, err := p.Cluster().RackOf(m)
			if err != nil {
				return err
			}
			if blockInRack(p, id, r) && p.RackSpread(id)+k-p.ReplicaCount(id)-1 < spec.MinRacks {
				continue
			}
		}
		if err := p.AddReplica(id, m); err != nil {
			return err
		}
	}
	if p.ReplicaCount(id) < k {
		return ErrMachineFull
	}
	return nil
}

func TestBPRackSearchKeepsFeasibility(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 11))
	cl := mustCluster(t, 3, 3, 10)
	specs := randomSpecs(rng, 12, 3, 2, 40)
	p := rackRandomPlacement(t, cl, specs, rng)
	if err := p.CheckFeasible(); err != nil {
		t.Fatalf("starting placement infeasible: %v", err)
	}
	res, err := BPRackSearch(p, SearchOptions{})
	if err != nil {
		t.Fatalf("BPRackSearch: %v", err)
	}
	if err := p.CheckFeasible(); err != nil {
		t.Errorf("search broke feasibility: %v", err)
	}
	if err := p.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	if res.FinalCost > res.InitialCost {
		t.Errorf("cost increased: %v -> %v", res.InitialCost, res.FinalCost)
	}
}

// Theorem 4 / Corollary 5: SOL <= OPT + 3*p_max on exactly solvable
// instances, hence SOL <= 4*OPT.
func TestBPRackApproximationGuarantee(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewPCG(seed, seed+999))
		cl := mustCluster(t, 2, 2, 4)
		nBlocks := rng.IntN(4) + 2
		specs := randomSpecs(rng, nBlocks, 2, 2, 30)
		p := rackRandomPlacement(t, cl, specs, rng)

		res, err := BPRackSearch(p, SearchOptions{})
		if err != nil {
			t.Fatalf("seed %d: BPRackSearch: %v", seed, err)
		}
		opt, err := ExactOptimal(cl, specs, nil)
		if err != nil {
			t.Fatalf("seed %d: ExactOptimal: %v", seed, err)
		}
		pmax := p.MaxPerReplicaPopularity()
		if res.FinalCost > opt+3*pmax+1e-9 {
			t.Errorf("seed %d: SOL %v > OPT %v + 3*pmax %v", seed, res.FinalCost, opt, 3*pmax)
		}
		if opt > 0 && res.FinalCost > 4*opt+1e-9 {
			t.Errorf("seed %d: SOL %v > 4*OPT %v", seed, res.FinalCost, 4*opt)
		}
		if res.FinalCost < opt-1e-9 {
			t.Errorf("seed %d: SOL %v beat OPT %v", seed, res.FinalCost, opt)
		}
	}
}

func TestBPRackCrossRackMoveHappens(t *testing.T) {
	// Rack 0 overloaded, rack 1 empty except spread anchors. A block
	// with rho=1 should migrate across racks.
	cl := mustCluster(t, 2, 2, 100)
	specs := []BlockSpec{
		spec(1, 50, 1, 1),
		spec(2, 40, 1, 1),
		spec(3, 30, 1, 1),
	}
	p := mustPlacement(t, cl, specs)
	for _, s := range specs {
		if err := p.AddReplica(s.ID, 0); err != nil {
			t.Fatalf("AddReplica: %v", err)
		}
	}
	var kinds []OpKind
	res, err := BPRackSearch(p, SearchOptions{OnOp: func(o Op) { kinds = append(kinds, o.Kind) }})
	if err != nil {
		t.Fatalf("BPRackSearch: %v", err)
	}
	if res.Iterations == 0 {
		t.Fatal("expected cross-rack rebalancing ops")
	}
	sawRackOp := false
	for _, k := range kinds {
		if k == OpRackMove || k == OpRackSwap {
			sawRackOp = true
		}
	}
	if !sawRackOp {
		t.Errorf("no RackMove/RackSwap performed; kinds = %v", kinds)
	}
	// Final max load should be 50 (one block per machine... 3 blocks, 4 machines).
	if got := p.Cost(); got != 50 {
		t.Errorf("Cost = %v, want 50", got)
	}
}

func TestBPRackRespectsRackSpreadDuringSearch(t *testing.T) {
	// Block 1 has rho=2 with exactly 2 replicas: neither replica may move
	// into the other's rack even if it would balance load.
	cl := mustCluster(t, 2, 2, 100)
	specs := []BlockSpec{
		spec(1, 100, 2, 2),
		spec(2, 1, 1, 1),
	}
	p := mustPlacement(t, cl, specs)
	if err := p.AddReplica(1, 0); err != nil {
		t.Fatalf("AddReplica: %v", err)
	}
	if err := p.AddReplica(1, 2); err != nil {
		t.Fatalf("AddReplica: %v", err)
	}
	if err := p.AddReplica(2, 0); err != nil {
		t.Fatalf("AddReplica: %v", err)
	}
	if _, err := BPRackSearch(p, SearchOptions{}); err != nil {
		t.Fatalf("BPRackSearch: %v", err)
	}
	if got := p.RackSpread(1); got != 2 {
		t.Errorf("block 1 rack spread = %d, want 2", got)
	}
	if err := p.CheckFeasible(); err != nil {
		t.Errorf("feasibility broken: %v", err)
	}
}

func TestBPRackObserverCountsMovements(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 13))
	cl := mustCluster(t, 3, 2, 50)
	specs := randomSpecs(rng, 30, 2, 2, 25)
	p := rackRandomPlacement(t, cl, specs, rng)
	movements := 0
	res, err := BPRackSearch(p, SearchOptions{OnOp: func(o Op) { movements += o.BlockMovements() }})
	if err != nil {
		t.Fatalf("BPRackSearch: %v", err)
	}
	if movements != res.Movements {
		t.Errorf("observer movements %d != result %d", movements, res.Movements)
	}
}

func TestBPRackTerminatesOnSingleMachineRacks(t *testing.T) {
	// Degenerate topology: every rack has exactly one machine, so no
	// intra-rack ops exist; only rack ops apply.
	cl := mustCluster(t, 4, 1, 50)
	specs := []BlockSpec{spec(1, 40, 1, 1), spec(2, 30, 1, 1), spec(3, 20, 1, 1)}
	p := mustPlacement(t, cl, specs)
	for _, s := range specs {
		if err := p.AddReplica(s.ID, 0); err != nil {
			t.Fatalf("AddReplica: %v", err)
		}
	}
	res, err := BPRackSearch(p, SearchOptions{})
	if err != nil {
		t.Fatalf("BPRackSearch: %v", err)
	}
	if got := p.Cost(); got != 40 {
		t.Errorf("Cost = %v, want 40 (one block per machine)", got)
	}
	if res.Iterations == 0 {
		t.Error("expected rack moves on degenerate topology")
	}
}
