package core

import (
	"testing"

	"aurora/internal/topology"
)

// TestShardClusterPreservesInterleavedIDs guards the identity contract of
// the per-shard quota cluster: machine and rack IDs must denote the same
// physical machines as the base cluster even when the base registers
// machines interleaved across racks (machine i in rack i%R — exactly how
// the namenode builds its topology). A rack-major rebuild silently
// permutes IDs, and every shard then computes rack spread and capacity
// against the wrong machines.
func TestShardClusterPreservesInterleavedIDs(t *testing.T) {
	const machines, racks = 6, 2
	var b topology.Builder
	rackIDs := make([]topology.RackID, racks)
	for r := range rackIDs {
		rackIDs[r] = b.AddRack()
	}
	for i := 0; i < machines; i++ {
		// Distinct capacities so a permutation is also visible there.
		if _, err := b.AddMachine(rackIDs[i%racks], 100+i, 4); err != nil {
			t.Fatal(err)
		}
	}
	base, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{2, 4} {
		qc, err := shardCluster(base, shards)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range base.Machines() {
			want := base.MustMachine(m)
			got := qc.MustMachine(m)
			if got.Rack != want.Rack {
				t.Errorf("shards=%d: machine %d rack %d, want %d", shards, m, got.Rack, want.Rack)
			}
			if got.Capacity != shardQuota(want.Capacity, shards) {
				t.Errorf("shards=%d: machine %d capacity %d, want quota of %d", shards, m, got.Capacity, want.Capacity)
			}
		}
	}

	// The merged inspection view must preserve identity too: a replica
	// placed on machine 1 (rack 1) must still be on rack 1 after Merge.
	sp, err := NewShardedPlacement(base, 2, []BlockSpec{
		{ID: 1, Popularity: 5, MinReplicas: 2, MinRacks: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []topology.MachineID{0, 1} { // racks 0 and 1
		if err := sp.AddReplica(1, m); err != nil {
			t.Fatal(err)
		}
	}
	if got := sp.RackSpread(1); got != 2 {
		t.Fatalf("sharded rack spread = %d, want 2", got)
	}
	merged, err := sp.Merge()
	if err != nil {
		t.Fatal(err)
	}
	if got := merged.RackSpread(1); got != 2 {
		t.Fatalf("merged rack spread = %d, want 2", got)
	}
}

func TestShardOfRangeAndStability(t *testing.T) {
	for _, shards := range []int{1, 2, 3, 8, 16} {
		counts := make([]int, shards)
		for id := BlockID(1); id <= 10000; id++ {
			s := ShardOf(id, shards)
			if s < 0 || s >= shards {
				t.Fatalf("ShardOf(%d, %d) = %d out of range", id, shards, s)
			}
			if s != ShardOf(id, shards) {
				t.Fatalf("ShardOf(%d, %d) unstable", id, shards)
			}
			counts[s]++
		}
		// Hash partitioning should be roughly even: no shard may be
		// empty, and none may hold more than twice its fair share.
		fair := 10000 / shards
		for s, c := range counts {
			if c == 0 {
				t.Fatalf("shards=%d: shard %d empty", shards, s)
			}
			if shards > 1 && c > 2*fair {
				t.Fatalf("shards=%d: shard %d holds %d of 10000 (fair %d)", shards, s, c, fair)
			}
		}
	}
}

func TestShardOfSingleShard(t *testing.T) {
	for _, id := range []BlockID{0, 1, 42, 1 << 40} {
		if ShardOf(id, 1) != 0 || ShardOf(id, 0) != 0 || ShardOf(id, -3) != 0 {
			t.Fatalf("ShardOf(%d, <=1) must be 0", id)
		}
	}
}

func TestApportionLargestRemainder(t *testing.T) {
	cases := []struct {
		total   int
		weights []float64
		want    []int
	}{
		{total: 10, weights: []float64{1, 1}, want: []int{5, 5}},
		{total: 10, weights: []float64{3, 1}, want: []int{8, 2}}, // 7.5, 2.5 -> floors 7,2; leftover to the .5 tie at the low index
		{total: 7, weights: []float64{1, 1, 1}, want: []int{3, 2, 2}},
		{total: 0, weights: []float64{1, 2}, want: []int{0, 0}},
		{total: 5, weights: []float64{0, 0}, want: []int{3, 2}}, // zero weights: even split
		{total: 4, weights: []float64{-1, 2}, want: []int{0, 4}},
	}
	for _, c := range cases {
		got := apportion(c.total, c.weights)
		sum := 0
		for i := range got {
			sum += got[i]
			if got[i] != c.want[i] {
				t.Fatalf("apportion(%d, %v) = %v, want %v", c.total, c.weights, got, c.want)
			}
		}
		if c.total > 0 && sum != c.total {
			t.Fatalf("apportion(%d, %v) sums to %d", c.total, c.weights, sum)
		}
	}
}

func TestSplitCap(t *testing.T) {
	if splitCap(0, 4, 0) != 0 {
		t.Fatal("unbounded cap must stay unbounded")
	}
	total := 0
	for i := 0; i < 4; i++ {
		total += splitCap(10, 4, i)
	}
	if total != 10 {
		t.Fatalf("splitCap shares sum to %d, want 10", total)
	}
	if splitCap(10, 4, 0) != 3 || splitCap(10, 4, 2) != 2 {
		t.Fatal("remainder must go to low shard indexes")
	}
}

func TestShardQuota(t *testing.T) {
	if shardQuota(360, 1) != 360 {
		t.Fatal("single shard keeps exact capacity")
	}
	q := shardQuota(360, 8)
	if q < 360/8 {
		t.Fatalf("quota %d below even split", q)
	}
	// The overcommit must absorb binomial skew: ~50% above the even
	// split plus a floor.
	if q < 45+22 {
		t.Fatalf("quota %d has insufficient slack", q)
	}
}
