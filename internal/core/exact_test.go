package core

import (
	"errors"
	"math"
	"testing"

	"aurora/internal/topology"
)

func TestExactOptimalSimpleMakespan(t *testing.T) {
	// Classic makespan: popularities {5,4,3,2,1} on 2 machines, k=1.
	// Optimal split: {5,3} vs {4,2,1} → max 8, or {5,2,1}=8 vs {4,3}=7.
	cl := mustCluster(t, 1, 2, 10)
	specs := []BlockSpec{
		spec(1, 5, 1, 1), spec(2, 4, 1, 1), spec(3, 3, 1, 1),
		spec(4, 2, 1, 1), spec(5, 1, 1, 1),
	}
	got, err := ExactOptimal(cl, specs, nil)
	if err != nil {
		t.Fatalf("ExactOptimal: %v", err)
	}
	if math.Abs(got-8) > 1e-9 {
		t.Errorf("OPT = %v, want 8", got)
	}
}

func TestExactOptimalWithReplication(t *testing.T) {
	// One block, P=12, k=3, on 3 machines: per-replica 4, λ*=4.
	cl := mustCluster(t, 1, 3, 10)
	specs := []BlockSpec{spec(1, 12, 3, 1)}
	got, err := ExactOptimal(cl, specs, nil)
	if err != nil {
		t.Fatalf("ExactOptimal: %v", err)
	}
	if math.Abs(got-4) > 1e-9 {
		t.Errorf("OPT = %v, want 4", got)
	}
	// Factor override: k=2 → per-replica 6.
	got, err = ExactOptimal(cl, specs, map[BlockID]int{1: 2})
	if err != nil {
		t.Fatalf("ExactOptimal: %v", err)
	}
	if math.Abs(got-6) > 1e-9 {
		t.Errorf("OPT with k=2 = %v, want 6", got)
	}
}

func TestExactOptimalRackConstraintBinds(t *testing.T) {
	// 2 racks x 1 machine, capacities 2. Block 1 (rho=2) must span both
	// racks; block 2 piles onto one of them.
	cl := mustCluster(t, 2, 1, 2)
	specs := []BlockSpec{
		spec(1, 10, 2, 2),
		spec(2, 6, 1, 1),
	}
	got, err := ExactOptimal(cl, specs, nil)
	if err != nil {
		t.Fatalf("ExactOptimal: %v", err)
	}
	// Block 1 contributes 5 to both machines; block 2 adds 6 somewhere:
	// λ* = 11.
	if math.Abs(got-11) > 1e-9 {
		t.Errorf("OPT = %v, want 11", got)
	}
}

func TestExactOptimalInfeasible(t *testing.T) {
	cl := mustCluster(t, 1, 1, 1)
	specs := []BlockSpec{spec(1, 1, 1, 1), spec(2, 1, 1, 1)}
	if _, err := ExactOptimal(cl, specs, nil); !errors.Is(err, ErrInfeasible) {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
}

func TestExactOptimalRejectsBadFactor(t *testing.T) {
	cl := mustCluster(t, 2, 2, 5)
	specs := []BlockSpec{spec(1, 1, 2, 2)}
	if _, err := ExactOptimal(cl, specs, map[BlockID]int{1: 1}); !errors.Is(err, ErrBadSpec) {
		t.Errorf("factor below rack spread err = %v, want ErrBadSpec", err)
	}
	if _, err := ExactOptimal(cl, specs, map[BlockID]int{1: 99}); !errors.Is(err, ErrBadSpec) {
		t.Errorf("factor above machines err = %v, want ErrBadSpec", err)
	}
}

func TestLowerBoundNeverExceedsExact(t *testing.T) {
	cl := mustCluster(t, 2, 2, 6)
	specs := []BlockSpec{
		spec(1, 9, 2, 2), spec(2, 7, 1, 1), spec(3, 4, 2, 1), spec(4, 2, 1, 1),
	}
	opt, err := ExactOptimal(cl, specs, nil)
	if err != nil {
		t.Fatalf("ExactOptimal: %v", err)
	}
	lb := LowerBound(cl, specs, nil)
	if lb > opt+1e-9 {
		t.Errorf("LowerBound %v exceeds OPT %v", lb, opt)
	}
	if lb <= 0 {
		t.Errorf("LowerBound = %v, want positive", lb)
	}
}

func TestLowerBoundComponents(t *testing.T) {
	cl := mustCluster(t, 1, 4, 10)
	// avg = (8+4)/4 = 3; pmax = 8/2 = 4 → bound 4.
	specs := []BlockSpec{spec(1, 8, 2, 1), spec(2, 4, 4, 1)}
	if got := LowerBound(cl, specs, nil); math.Abs(got-4) > 1e-12 {
		t.Errorf("LowerBound = %v, want 4 (pmax dominates)", got)
	}
	// With k1 raised to 8... capped: factor map k1=4 → pmax = 2, avg = 3 → 3.
	if got := LowerBound(cl, specs, map[BlockID]int{1: 4}); math.Abs(got-3) > 1e-12 {
		t.Errorf("LowerBound with factors = %v, want 3 (average dominates)", got)
	}
}

func TestExactOptimalNilCluster(t *testing.T) {
	if _, err := ExactOptimal(nil, nil, nil); !errors.Is(err, topology.ErrNoMachines) {
		t.Errorf("err = %v, want ErrNoMachines", err)
	}
}

func TestExactOptimalWithRepFactorTargets(t *testing.T) {
	// End-to-end Theorem 6 shape: Algorithm 3 factors + Algorithm 2
	// placement lands within 4x of the exact optimum computed under the
	// same factors.
	cl := mustCluster(t, 2, 2, 4)
	specs := []BlockSpec{
		spec(1, 60, 1, 1),
		spec(2, 20, 1, 1),
		spec(3, 10, 1, 1),
	}
	rf, err := ComputeReplicationFactors(specs, 7, cl.NumMachines(), 0)
	if err != nil {
		t.Fatalf("ComputeReplicationFactors: %v", err)
	}
	p := mustPlacement(t, cl, specs)
	for _, s := range specs {
		if err := InitialPlace(p, s.ID, rf.Factors[s.ID], topology.NoMachine); err != nil {
			t.Fatalf("InitialPlace: %v", err)
		}
	}
	res, err := BPRackSearch(p, SearchOptions{})
	if err != nil {
		t.Fatalf("BPRackSearch: %v", err)
	}
	opt, err := ExactOptimal(cl, specs, rf.Factors)
	if err != nil {
		t.Fatalf("ExactOptimal: %v", err)
	}
	if opt > 0 && res.FinalCost > 4*opt+1e-9 {
		t.Errorf("SOL %v > 4*OPT %v under Algorithm 3 factors", res.FinalCost, opt)
	}
}
