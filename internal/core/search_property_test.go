package core

import (
	"errors"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"aurora/internal/topology"
)

// buildRandomInstance creates a random feasible placement for property
// tests: small enough to run hundreds of times, varied enough to explore
// the operation space.
func buildRandomInstance(seed uint64) (*Placement, []BlockSpec, error) {
	rng := rand.New(rand.NewPCG(seed, seed^0xbeef))
	racks := rng.IntN(3) + 2
	perRack := rng.IntN(3) + 2
	capacity := rng.IntN(20) + 10
	cl, err := topology.Uniform(racks, perRack, capacity, 2)
	if err != nil {
		return nil, nil, err
	}
	nBlocks := rng.IntN(20) + 5
	specs := make([]BlockSpec, nBlocks)
	for i := range specs {
		k := rng.IntN(3) + 1
		rho := 1
		if k >= 2 && rng.IntN(2) == 0 {
			rho = 2
		}
		specs[i] = BlockSpec{
			ID:          BlockID(i + 1),
			Popularity:  float64(rng.IntN(100)),
			MinReplicas: k,
			MinRacks:    rho,
		}
	}
	p, err := NewPlacement(cl, specs)
	if err != nil {
		return nil, nil, err
	}
	for _, s := range specs {
		if err := InitialPlace(p, s.ID, s.MinReplicas, topology.NoMachine); err != nil {
			return nil, nil, err
		}
	}
	// Shuffle with random feasible moves so the start is not already
	// greedy-balanced.
	machines := cl.Machines()
	for i := 0; i < 50; i++ {
		id := specs[rng.IntN(len(specs))].ID
		reps := p.Replicas(id)
		if len(reps) == 0 {
			continue
		}
		from := reps[rng.IntN(len(reps))]
		to := machines[rng.IntN(len(machines))]
		_ = p.MoveReplica(id, from, to) // infeasible moves just fail
	}
	return p, specs, nil
}

// Properties of both local searches, on random instances:
//  1. cost never increases;
//  2. per-block replica counts are preserved exactly;
//  3. fault-tolerance feasibility is preserved;
//  4. incremental bookkeeping stays consistent;
//  5. the run is deterministic.
func TestSearchInvariantsProperty(t *testing.T) {
	check := func(search func(*Placement, SearchOptions) (SearchResult, error)) func(seed uint64, epsRaw uint8) bool {
		return func(seed uint64, epsRaw uint8) bool {
			p, _, err := buildRandomInstance(seed)
			if errors.Is(err, ErrMachineFull) {
				return true // instance does not fit the cluster; vacuous
			}
			if err != nil {
				t.Logf("build: %v", err)
				return false
			}
			eps := float64(epsRaw%10) / 10
			counts := make(map[BlockID]int)
			for _, id := range p.Blocks() {
				counts[id] = p.ReplicaCount(id)
			}
			feasibleBefore := p.CheckFeasible() == nil
			before := p.Cost()
			clone := p.Clone()

			res, err := search(p, SearchOptions{Epsilon: eps})
			if err != nil {
				t.Logf("search: %v", err)
				return false
			}
			if res.FinalCost > before+1e-9 {
				t.Logf("cost increased: %v -> %v", before, res.FinalCost)
				return false
			}
			for id, k := range counts {
				if p.ReplicaCount(id) != k {
					t.Logf("replica count changed for block %d", id)
					return false
				}
			}
			if feasibleBefore && p.CheckFeasible() != nil {
				t.Logf("feasibility broken")
				return false
			}
			if err := p.Validate(); err != nil {
				t.Logf("validate: %v", err)
				return false
			}
			// Determinism: the same search on the clone lands identically.
			res2, err := search(clone, SearchOptions{Epsilon: eps})
			if err != nil || res2.Iterations != res.Iterations || res2.FinalCost != res.FinalCost {
				t.Logf("nondeterministic: %+v vs %+v (%v)", res, res2, err)
				return false
			}
			return true
		}
	}
	t.Run("node", func(t *testing.T) {
		if err := quick.Check(check(BPNodeSearch), &quick.Config{MaxCount: 60}); err != nil {
			t.Error(err)
		}
	})
	t.Run("rack", func(t *testing.T) {
		if err := quick.Check(check(BPRackSearch), &quick.Config{MaxCount: 60}); err != nil {
			t.Error(err)
		}
	})
}

// Property: Optimize never exceeds the replication budget (starting from
// a minimal placement), never drops a block below its minimums, and
// leaves consistent bookkeeping.
func TestOptimizeInvariantsProperty(t *testing.T) {
	f := func(seed uint64, extraRaw uint8) bool {
		p, specs, err := buildRandomInstance(seed)
		if errors.Is(err, ErrMachineFull) {
			return true // instance does not fit the cluster; vacuous
		}
		if err != nil {
			return false
		}
		minTotal := 0
		for _, s := range specs {
			minTotal += s.MinReplicas
		}
		budget := minTotal + int(extraRaw%32)
		if budget < p.TotalReplicas() {
			budget = p.TotalReplicas()
		}
		if budget <= 0 {
			return true
		}
		if _, err := Optimize(p, OptimizerOptions{
			Epsilon:           0.1,
			RackAware:         true,
			ReplicationBudget: budget,
		}); err != nil {
			t.Logf("optimize: %v", err)
			return false
		}
		if p.TotalReplicas() > budget {
			t.Logf("budget exceeded: %d > %d", p.TotalReplicas(), budget)
			return false
		}
		if err := p.CheckFeasible(); err != nil {
			t.Logf("infeasible: %v", err)
			return false
		}
		return p.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
