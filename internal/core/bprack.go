package core

import (
	"sort"

	"aurora/internal/topology"
)

// BPRackSearch implements Algorithm 2 of the paper: local search for the
// BP-Rack problem (known replication factors with rack-level
// fault-tolerance ρ_i), using the full operation set
//
//   - Move(m_r, i, n_r) / Swap(m_r, i, n_r, j) within a rack, and
//   - RackMove(r, m, i, t, n) / RackSwap(r, m, i, t, n, j) between racks,
//
// where the underlying Move/Swap primitives enforce rack-spread
// feasibility — that is what distinguishes RackMove/RackSwap from their
// intra-rack counterparts.
//
// As with BPNodeSearch, the search follows Algorithm 5's closure: each
// iteration probes source machines in descending load order, pairing each
// source against the least-loaded machines of every rack (which subsumes
// the paper's per-rack extreme pairs), applies the first admissible
// operation found, and terminates only when no source yields one. By
// Theorem 4 the terminal state satisfies SOL <= OPT + 3*p_max, a
// 4-approximation (Corollary 5); epsilon-admissibility degrades the
// factor gracefully per Theorem 9.
func BPRackSearch(p *Placement, opts SearchOptions) (SearchResult, error) {
	res := SearchResult{InitialCost: p.Cost()}
	cluster := p.Cluster()
	racks := cluster.Racks()
	// Lazy stuck tracking with a clean verification pass before
	// termination; see BPNodeSearch for the invariant.
	stuck := make(map[topology.MachineID]bool)
	verified := false
	for opts.MaxIterations == 0 || res.Iterations < opts.MaxIterations {
		targets := rackMinTargets(p, racks)
		if len(targets) == 0 {
			break
		}
		globalMin := targets[0].load
		m, ok := maxLoadedExcluding(p, stuck, globalMin)
		if !ok {
			if verified {
				break
			}
			clear(stuck)
			verified = true
			continue
		}
		c, found := bestAmongTargets(p, m, targets, opts.Epsilon, !opts.DisableSwap)
		if !found {
			stuck[m] = true
			continue
		}
		if err := applyCandidate(p, c, &opts, &res); err != nil {
			return res, err
		}
		verified = false
		delete(stuck, c.op.From)
		delete(stuck, c.op.To)
	}
	res.FinalCost = p.Cost()
	return res, nil
}

// minTarget is a candidate destination machine: the least-loaded machine
// of one rack.
type minTarget struct {
	machine topology.MachineID
	load    float64
}

// rackMinTargets returns each rack's least-loaded machine, sorted by
// ascending load (the global minimum first). Ties break by machine ID.
func rackMinTargets(p *Placement, racks []topology.RackID) []minTarget {
	targets := make([]minTarget, 0, len(racks))
	for _, r := range racks {
		m, err := p.MinLoadedMachineInRack(r)
		if err != nil {
			continue
		}
		targets = append(targets, minTarget{machine: m, load: p.Load(m)})
	}
	sort.Slice(targets, func(a, b int) bool {
		if !floatEq(targets[a].load, targets[b].load) {
			return targets[a].load < targets[b].load
		}
		return targets[a].machine < targets[b].machine
	})
	return targets
}

// bestAmongTargets probes the source machine m against every rack's
// least-loaded machine in ascending-load order and returns the first
// admissible candidate.
func bestAmongTargets(p *Placement, m topology.MachineID, targets []minTarget, epsilon float64, allowSwap bool) (candidate, bool) {
	for _, t := range targets {
		if t.machine == m {
			continue
		}
		if c, ok := bestPairOpSwap(p, m, t.machine, epsilon, allowSwap); ok {
			return c, true
		}
	}
	return candidate{}, false
}
