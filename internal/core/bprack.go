package core

import (
	"aurora/internal/topology"
)

// BPRackSearch implements Algorithm 2 of the paper: local search for the
// BP-Rack problem (known replication factors with rack-level
// fault-tolerance ρ_i), using the full operation set
//
//   - Move(m_r, i, n_r) / Swap(m_r, i, n_r, j) within a rack, and
//   - RackMove(r, m, i, t, n) / RackSwap(r, m, i, t, n, j) between racks,
//
// where the underlying Move/Swap primitives enforce rack-spread
// feasibility — that is what distinguishes RackMove/RackSwap from their
// intra-rack counterparts.
//
// As with BPNodeSearch, the search follows Algorithm 5's closure: each
// iteration probes source machines in descending load order, pairing each
// source against the least-loaded machines of every rack (which subsumes
// the paper's per-rack extreme pairs), applies the first admissible
// operation found, and terminates only when no source yields one. By
// Theorem 4 the terminal state satisfies SOL <= OPT + 3*p_max, a
// 4-approximation (Corollary 5); epsilon-admissibility degrades the
// factor gracefully per Theorem 9.
func BPRackSearch(p *Placement, opts SearchOptions) (SearchResult, error) {
	res := SearchResult{InitialCost: p.Cost()}
	numRacks := p.Cluster().NumRacks()
	// Lazy stuck tracking via index masks, with a clean verification pass
	// before termination; see BPNodeSearch for the invariant. The target
	// buffer is allocated once and refilled each iteration.
	idx := p.loadIndex()
	idx.ClearMasks()
	defer idx.ClearMasks()
	targets := make([]minTarget, 0, numRacks)
	verified := false
	for opts.MaxIterations == 0 || res.Iterations < opts.MaxIterations {
		targets = appendRackMinTargets(p, targets[:0], numRacks)
		if len(targets) == 0 {
			break
		}
		globalMin := targets[0].load
		mi, ok := idx.MaxUnmasked(globalMin)
		if !ok {
			if verified {
				break
			}
			idx.ClearMasks()
			verified = true
			continue
		}
		m := topology.MachineID(mi)
		c, found := bestAmongTargets(p, m, targets, opts.Epsilon, !opts.DisableSwap)
		if !found {
			idx.Mask(mi)
			continue
		}
		if err := applyCandidate(p, c, &opts, &res); err != nil {
			return res, err
		}
		verified = false
		idx.Unmask(int(c.op.From))
		idx.Unmask(int(c.op.To))
	}
	res.FinalCost = p.Cost()
	return res, nil
}

// minTarget is a candidate destination machine: the least-loaded machine
// of one rack.
type minTarget struct {
	machine topology.MachineID
	load    float64
}

// targetLess is the exact strict total order on (load, machine) used to
// rank destination candidates: ascending load, ties by machine ID. Since
// machine IDs are unique the order is total, so any correct sort yields
// the same sequence.
func targetLess(a, b minTarget) bool {
	if a.load < b.load {
		return true
	}
	if a.load > b.load {
		return false
	}
	return a.machine < b.machine
}

// appendRackMinTargets appends each rack's least-loaded machine to buf,
// sorted by targetLess (the global minimum first). The per-rack minima
// come from the load index, and the handful of racks is ordered with an
// allocation-free insertion sort.
func appendRackMinTargets(p *Placement, buf []minTarget, numRacks int) []minTarget {
	idx := p.loadIndex()
	for r := 0; r < numRacks; r++ {
		m := topology.MachineID(idx.MinInRack(r))
		t := minTarget{machine: m, load: p.Load(m)}
		i := len(buf)
		buf = append(buf, t)
		for i > 0 && targetLess(t, buf[i-1]) {
			buf[i] = buf[i-1]
			i--
		}
		buf[i] = t
	}
	return buf
}

// bestAmongTargets probes the source machine m against every rack's
// least-loaded machine in ascending-load order and returns the first
// admissible candidate.
func bestAmongTargets(p *Placement, m topology.MachineID, targets []minTarget, epsilon float64, allowSwap bool) (candidate, bool) {
	for _, t := range targets {
		if t.machine == m {
			continue
		}
		if c, ok := bestPairOpSwap(p, m, t.machine, epsilon, allowSwap); ok {
			return c, true
		}
	}
	return candidate{}, false
}
