package core

import (
	"math"
	"math/rand/v2"
	"testing"

	"aurora/internal/topology"
)

// randomPlacement places each block's replicas uniformly at random
// (HDFS-style), panicking only on programming errors. Replica counts use
// each spec's MinReplicas.
func randomPlacement(t *testing.T, cl *topology.Cluster, specs []BlockSpec, rng *rand.Rand) *Placement {
	t.Helper()
	p := mustPlacement(t, cl, specs)
	machines := cl.Machines()
	for _, s := range specs {
		placed := 0
		for attempts := 0; placed < s.MinReplicas && attempts < 10000; attempts++ {
			m := machines[rng.IntN(len(machines))]
			if err := p.AddReplica(s.ID, m); err == nil {
				placed++
			}
		}
		if placed < s.MinReplicas {
			t.Fatalf("could not randomly place block %d", s.ID)
		}
	}
	return p
}

func randomSpecs(rng *rand.Rand, n, k, rho int, maxPop int) []BlockSpec {
	specs := make([]BlockSpec, n)
	for i := range specs {
		specs[i] = BlockSpec{
			ID:          BlockID(i + 1),
			Popularity:  float64(rng.IntN(maxPop) + 1),
			MinReplicas: k,
			MinRacks:    rho,
		}
	}
	return specs
}

func TestBPNodeSearchImprovesSkewedStart(t *testing.T) {
	// All blocks piled on one machine; the search must spread them out.
	cl := mustCluster(t, 1, 4, 100)
	specs := randomSpecs(rand.New(rand.NewPCG(1, 1)), 16, 1, 1, 10)
	p := mustPlacement(t, cl, specs)
	for _, s := range specs {
		if err := p.AddReplica(s.ID, 0); err != nil {
			t.Fatalf("AddReplica: %v", err)
		}
	}
	before := p.Cost()
	res, err := BPNodeSearch(p, SearchOptions{})
	if err != nil {
		t.Fatalf("BPNodeSearch: %v", err)
	}
	if res.FinalCost >= before {
		t.Errorf("FinalCost %v did not improve on %v", res.FinalCost, before)
	}
	if res.InitialCost != before {
		t.Errorf("InitialCost = %v, want %v", res.InitialCost, before)
	}
	if res.FinalCost != p.Cost() {
		t.Errorf("FinalCost = %v, placement Cost = %v", res.FinalCost, p.Cost())
	}
	if err := p.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	// Theorem 2 terminal condition: SOL <= LB + p_max, with LB a valid
	// lower bound on OPT.
	lb := LowerBound(cl, specs, nil)
	if res.FinalCost > lb+p.MaxPerReplicaPopularity()+1e-9 {
		t.Errorf("terminal cost %v exceeds LB+pmax = %v", res.FinalCost, lb+p.MaxPerReplicaPopularity())
	}
}

func TestBPNodeSearchPreservesReplicaCounts(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	cl := mustCluster(t, 2, 3, 8)
	specs := randomSpecs(rng, 10, 2, 1, 20)
	p := randomPlacement(t, cl, specs, rng)
	want := make(map[BlockID]int)
	for _, id := range p.Blocks() {
		want[id] = p.ReplicaCount(id)
	}
	if _, err := BPNodeSearch(p, SearchOptions{}); err != nil {
		t.Fatalf("BPNodeSearch: %v", err)
	}
	for id, k := range want {
		if got := p.ReplicaCount(id); got != k {
			t.Errorf("block %d replica count changed: %d -> %d", id, k, got)
		}
	}
	if err := p.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

// Theorem 2 / Corollary 3: on instances small enough for the exact
// solver, the local search lands within OPT + p_max (and hence within
// 2*OPT).
func TestBPNodeApproximationGuarantee(t *testing.T) {
	for seed := uint64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewPCG(seed, seed+100))
		cl := mustCluster(t, 1, 4, 6)
		nBlocks := rng.IntN(5) + 2
		specs := randomSpecs(rng, nBlocks, rng.IntN(2)+1, 1, 30)
		p := randomPlacement(t, cl, specs, rng)

		res, err := BPNodeSearch(p, SearchOptions{})
		if err != nil {
			t.Fatalf("seed %d: BPNodeSearch: %v", seed, err)
		}
		opt, err := ExactOptimal(cl, specs, nil)
		if err != nil {
			t.Fatalf("seed %d: ExactOptimal: %v", seed, err)
		}
		pmax := p.MaxPerReplicaPopularity()
		if res.FinalCost > opt+pmax+1e-9 {
			t.Errorf("seed %d: SOL %v > OPT %v + pmax %v", seed, res.FinalCost, opt, pmax)
		}
		if opt > 0 && res.FinalCost > 2*opt+1e-9 {
			t.Errorf("seed %d: SOL %v > 2*OPT %v", seed, res.FinalCost, 2*opt)
		}
		if res.FinalCost < opt-1e-9 {
			t.Errorf("seed %d: SOL %v beat OPT %v (exact solver bug?)", seed, res.FinalCost, opt)
		}
	}
}

func TestBPNodeEpsilonTradesMovesForQuality(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 5))
	cl := mustCluster(t, 1, 8, 200)
	specs := randomSpecs(rng, 200, 1, 1, 50)
	base := mustPlacement(t, cl, specs)
	// Skewed start: everything on two machines.
	for i, s := range specs {
		if err := base.AddReplica(s.ID, topology.MachineID(i%2)); err != nil {
			t.Fatalf("AddReplica: %v", err)
		}
	}
	prevMoves := math.MaxInt
	prevCost := 0.0
	for _, eps := range []float64{0.0, 0.3, 0.8} {
		p := base.Clone()
		res, err := BPNodeSearch(p, SearchOptions{Epsilon: eps})
		if err != nil {
			t.Fatalf("eps %v: %v", eps, err)
		}
		if res.Movements > prevMoves {
			t.Errorf("eps %v made more movements (%d) than smaller epsilon (%d)", eps, res.Movements, prevMoves)
		}
		if res.FinalCost < prevCost-1e-9 {
			t.Errorf("eps %v achieved lower cost (%v) than smaller epsilon (%v)", eps, res.FinalCost, prevCost)
		}
		prevMoves, prevCost = res.Movements, res.FinalCost
	}
}

func TestBPNodeMaxIterations(t *testing.T) {
	rng := rand.New(rand.NewPCG(6, 6))
	cl := mustCluster(t, 1, 6, 200)
	specs := randomSpecs(rng, 100, 1, 1, 50)
	p := mustPlacement(t, cl, specs)
	for _, s := range specs {
		if err := p.AddReplica(s.ID, 0); err != nil {
			t.Fatalf("AddReplica: %v", err)
		}
	}
	res, err := BPNodeSearch(p, SearchOptions{MaxIterations: 3})
	if err != nil {
		t.Fatalf("BPNodeSearch: %v", err)
	}
	if res.Iterations > 3 {
		t.Errorf("Iterations = %d, want <= 3", res.Iterations)
	}
}

func TestBPNodeOnOpObserver(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	cl := mustCluster(t, 1, 4, 100)
	specs := randomSpecs(rng, 40, 1, 1, 30)
	p := mustPlacement(t, cl, specs)
	for _, s := range specs {
		if err := p.AddReplica(s.ID, 0); err != nil {
			t.Fatalf("AddReplica: %v", err)
		}
	}
	var seen []Op
	res, err := BPNodeSearch(p, SearchOptions{OnOp: func(o Op) { seen = append(seen, o) }})
	if err != nil {
		t.Fatalf("BPNodeSearch: %v", err)
	}
	if len(seen) != res.Iterations {
		t.Errorf("observer saw %d ops, result says %d", len(seen), res.Iterations)
	}
	movements := 0
	for _, o := range seen {
		movements += o.BlockMovements()
	}
	if movements != res.Movements {
		t.Errorf("observer movements %d, result says %d", movements, res.Movements)
	}
}

func TestBPNodeNoOpOnBalanced(t *testing.T) {
	cl := mustCluster(t, 1, 3, 10)
	specs := []BlockSpec{spec(1, 6, 3, 1)}
	p := mustPlacement(t, cl, specs)
	for m := topology.MachineID(0); m < 3; m++ {
		if err := p.AddReplica(1, m); err != nil {
			t.Fatalf("AddReplica: %v", err)
		}
	}
	res, err := BPNodeSearch(p, SearchOptions{})
	if err != nil {
		t.Fatalf("BPNodeSearch: %v", err)
	}
	if res.Iterations != 0 {
		t.Errorf("Iterations = %d on a balanced placement, want 0", res.Iterations)
	}
}

func TestBPNodeUsesSwapWhenTargetFull(t *testing.T) {
	// Machine 1 is at capacity with a cold block; only a swap can
	// relieve machine 0.
	cl := mustCluster(t, 1, 2, 2)
	specs := []BlockSpec{
		spec(1, 100, 1, 1), spec(2, 90, 1, 1), // hot, on machine 0
		spec(3, 1, 1, 1), spec(4, 2, 1, 1), // cold, on machine 1
	}
	p := mustPlacement(t, cl, specs)
	for _, id := range []BlockID{1, 2} {
		if err := p.AddReplica(id, 0); err != nil {
			t.Fatalf("AddReplica: %v", err)
		}
	}
	for _, id := range []BlockID{3, 4} {
		if err := p.AddReplica(id, 1); err != nil {
			t.Fatalf("AddReplica: %v", err)
		}
	}
	res, err := BPNodeSearch(p, SearchOptions{})
	if err != nil {
		t.Fatalf("BPNodeSearch: %v", err)
	}
	if res.Iterations == 0 {
		t.Fatal("no operation performed; expected a swap")
	}
	// Loads should end at 101/92 (swap 90 against 1): pair cost 101.
	if got := p.Cost(); math.Abs(got-101) > 1e-9 {
		t.Errorf("Cost = %v, want 101", got)
	}
	if err := p.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}
