package core

import (
	"fmt"
	"math"
	"sort"

	"aurora/internal/topology"
)

// Placement is the mutable assignment of block replicas to machines, with
// incremental load bookkeeping. It is the state all placement algorithms
// operate on.
//
// Placement is not safe for concurrent use; the optimizer serializes
// access.
type Placement struct {
	cluster  *topology.Cluster
	blocks   map[BlockID]*blockState
	machines []machineState
	rackLoad []float64
	replicas int // cached Σ_i k_i
}

type blockState struct {
	spec      BlockSpec
	replicas  map[topology.MachineID]struct{}
	rackCount map[topology.RackID]int
}

type machineState struct {
	load   float64
	blocks map[BlockID]struct{}
}

// NewPlacement creates an empty placement (no replicas) for the given
// blocks over the given cluster.
func NewPlacement(cluster *topology.Cluster, specs []BlockSpec) (*Placement, error) {
	if cluster == nil || cluster.NumMachines() == 0 {
		return nil, topology.ErrNoMachines
	}
	p := &Placement{
		cluster:  cluster,
		blocks:   make(map[BlockID]*blockState, len(specs)),
		machines: make([]machineState, cluster.NumMachines()),
		rackLoad: make([]float64, cluster.NumRacks()),
	}
	for i := range p.machines {
		p.machines[i].blocks = make(map[BlockID]struct{})
	}
	for _, s := range specs {
		if err := p.AddBlock(s); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// Cluster returns the cluster this placement is defined over.
func (p *Placement) Cluster() *topology.Cluster { return p.cluster }

// AddBlock registers a new, unplaced block.
func (p *Placement) AddBlock(s BlockSpec) error {
	if err := s.Validate(); err != nil {
		return err
	}
	if _, ok := p.blocks[s.ID]; ok {
		return fmt.Errorf("%w: block %d", ErrDuplicateBlock, s.ID)
	}
	if s.MinRacks > p.cluster.NumRacks() {
		return fmt.Errorf("%w: block %d requires %d racks, cluster has %d",
			ErrBadSpec, s.ID, s.MinRacks, p.cluster.NumRacks())
	}
	if s.MinReplicas > p.cluster.NumMachines() {
		return fmt.Errorf("%w: block %d requires %d replicas, cluster has %d machines",
			ErrBadSpec, s.ID, s.MinReplicas, p.cluster.NumMachines())
	}
	p.blocks[s.ID] = &blockState{
		spec:      s,
		replicas:  make(map[topology.MachineID]struct{}),
		rackCount: make(map[topology.RackID]int),
	}
	return nil
}

// DeleteBlock removes a block and all its replicas from the placement.
func (p *Placement) DeleteBlock(id BlockID) error {
	b, ok := p.blocks[id]
	if !ok {
		return fmt.Errorf("%w: block %d", ErrUnknownBlock, id)
	}
	perReplica := b.perReplica()
	for m := range b.replicas {
		delete(p.machines[m].blocks, id)
		p.machines[m].load -= perReplica
		rack := p.cluster.MustMachine(m).Rack
		p.rackLoad[rack] -= perReplica
	}
	p.replicas -= len(b.replicas)
	delete(p.blocks, id)
	return nil
}

// SetPopularity updates a block's total popularity, rescaling the load it
// contributes to its current holders. This is how each optimization epoch
// feeds fresh usage-monitor data into an existing placement.
func (p *Placement) SetPopularity(id BlockID, popularity float64) error {
	if popularity < 0 {
		return fmt.Errorf("%w: negative popularity %v", ErrBadSpec, popularity)
	}
	b, ok := p.blocks[id]
	if !ok {
		return fmt.Errorf("%w: block %d", ErrUnknownBlock, id)
	}
	old := b.perReplica()
	b.spec.Popularity = popularity
	p.reloadBlock(b, old)
	return nil
}

// Spec returns the spec of block id.
func (p *Placement) Spec(id BlockID) (BlockSpec, error) {
	b, ok := p.blocks[id]
	if !ok {
		return BlockSpec{}, fmt.Errorf("%w: block %d", ErrUnknownBlock, id)
	}
	return b.spec, nil
}

// Blocks returns all block IDs in ascending order.
func (p *Placement) Blocks() []BlockID {
	ids := make([]BlockID, 0, len(p.blocks))
	for id := range p.blocks {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// NumBlocks reports how many blocks are registered.
func (p *Placement) NumBlocks() int { return len(p.blocks) }

// perReplica is the load one replica of the block contributes: P_i / k_i
// with the *current* replica count (zero if unplaced).
func (b *blockState) perReplica() float64 {
	if len(b.replicas) == 0 {
		return 0
	}
	return b.spec.Popularity / float64(len(b.replicas))
}

// reloadBlock recomputes the load contribution of block b on all its
// holders after its per-replica popularity changed from oldPerReplica.
func (p *Placement) reloadBlock(b *blockState, oldPerReplica float64) {
	newPerReplica := b.perReplica()
	if floatEq(newPerReplica, oldPerReplica) {
		return
	}
	delta := newPerReplica - oldPerReplica
	for m := range b.replicas {
		p.machines[m].load += delta
		p.rackLoad[p.cluster.MustMachine(m).Rack] += delta
	}
}

// AddReplica places one replica of block id on machine m. The demand for
// the block re-divides among the enlarged replica set, so loads of the
// existing holders shrink.
func (p *Placement) AddReplica(id BlockID, m topology.MachineID) error {
	b, ok := p.blocks[id]
	if !ok {
		return fmt.Errorf("%w: block %d", ErrUnknownBlock, id)
	}
	mach, err := p.cluster.Machine(m)
	if err != nil {
		return err
	}
	if _, dup := b.replicas[m]; dup {
		return fmt.Errorf("%w: block %d on machine %d", ErrAlreadyPlaced, id, m)
	}
	if len(p.machines[m].blocks) >= mach.Capacity {
		return fmt.Errorf("%w: machine %d", ErrMachineFull, m)
	}
	old := b.perReplica()
	b.replicas[m] = struct{}{}
	p.replicas++
	b.rackCount[mach.Rack]++
	p.machines[m].blocks[id] = struct{}{}
	// The new holder picks up the new per-replica load; existing holders
	// are rescaled from the old value.
	newPerReplica := b.perReplica()
	p.machines[m].load += newPerReplica
	p.rackLoad[mach.Rack] += newPerReplica
	// Rescale the others (the new holder was already added at the new
	// rate, so exclude it by adjusting with the old rate first).
	for holder := range b.replicas {
		if holder == m {
			continue
		}
		p.machines[holder].load += newPerReplica - old
		p.rackLoad[p.cluster.MustMachine(holder).Rack] += newPerReplica - old
	}
	return nil
}

// RemoveReplica removes the replica of block id from machine m. It does
// not enforce MinReplicas — lazy deletion and intermediate optimizer
// states legitimately drop below it; call Feasible to check the final
// state.
func (p *Placement) RemoveReplica(id BlockID, m topology.MachineID) error {
	b, ok := p.blocks[id]
	if !ok {
		return fmt.Errorf("%w: block %d", ErrUnknownBlock, id)
	}
	if _, held := b.replicas[m]; !held {
		return fmt.Errorf("%w: block %d on machine %d", ErrNotPlaced, id, m)
	}
	mach := p.cluster.MustMachine(m)
	old := b.perReplica()
	delete(b.replicas, m)
	p.replicas--
	if b.rackCount[mach.Rack]--; b.rackCount[mach.Rack] == 0 {
		delete(b.rackCount, mach.Rack)
	}
	delete(p.machines[m].blocks, id)
	p.machines[m].load -= old
	p.rackLoad[mach.Rack] -= old
	p.reloadBlock(b, old)
	return nil
}

// MoveReplica relocates a replica of block id from machine `from` to
// machine `to` atomically: the replica count is unchanged and the rack
// spread requirement is verified before anything is mutated.
func (p *Placement) MoveReplica(id BlockID, from, to topology.MachineID) error {
	b, ok := p.blocks[id]
	if !ok {
		return fmt.Errorf("%w: block %d", ErrUnknownBlock, id)
	}
	if _, held := b.replicas[from]; !held {
		return fmt.Errorf("%w: block %d on machine %d", ErrNotPlaced, id, from)
	}
	if _, dup := b.replicas[to]; dup {
		return fmt.Errorf("%w: block %d on machine %d", ErrAlreadyPlaced, id, to)
	}
	toMach, err := p.cluster.Machine(to)
	if err != nil {
		return err
	}
	if len(p.machines[to].blocks) >= toMach.Capacity {
		return fmt.Errorf("%w: machine %d", ErrMachineFull, to)
	}
	if p.rackSpreadAfterMove(b, from, to) < b.spec.MinRacks && p.RackSpread(id) >= b.spec.MinRacks {
		return fmt.Errorf("%w: block %d move %d->%d", ErrRackConstraint, id, from, to)
	}
	perReplica := b.perReplica()
	fromMach := p.cluster.MustMachine(from)
	delete(b.replicas, from)
	if b.rackCount[fromMach.Rack]--; b.rackCount[fromMach.Rack] == 0 {
		delete(b.rackCount, fromMach.Rack)
	}
	delete(p.machines[from].blocks, id)
	p.machines[from].load -= perReplica
	p.rackLoad[fromMach.Rack] -= perReplica

	b.replicas[to] = struct{}{}
	b.rackCount[toMach.Rack]++
	p.machines[to].blocks[id] = struct{}{}
	p.machines[to].load += perReplica
	p.rackLoad[toMach.Rack] += perReplica
	return nil
}

// rackSpreadAfterMove computes the number of distinct racks holding block
// b if one replica moved from machine `from` to machine `to`.
func (p *Placement) rackSpreadAfterMove(b *blockState, from, to topology.MachineID) int {
	fromRack := p.cluster.MustMachine(from).Rack
	toRack := p.cluster.MustMachine(to).Rack
	spread := len(b.rackCount)
	if fromRack == toRack {
		return spread
	}
	if b.rackCount[fromRack] == 1 {
		spread--
	}
	if b.rackCount[toRack] == 0 {
		spread++
	}
	return spread
}

// CanMove reports whether MoveReplica(id, from, to) would succeed.
func (p *Placement) CanMove(id BlockID, from, to topology.MachineID) bool {
	b, ok := p.blocks[id]
	if !ok {
		return false
	}
	if _, held := b.replicas[from]; !held {
		return false
	}
	if _, dup := b.replicas[to]; dup {
		return false
	}
	toMach, err := p.cluster.Machine(to)
	if err != nil || len(p.machines[to].blocks) >= toMach.Capacity {
		return false
	}
	if p.rackSpreadAfterMove(b, from, to) < b.spec.MinRacks && p.RackSpread(id) >= b.spec.MinRacks {
		return false
	}
	return true
}

// SwapReplicas exchanges a replica of block i on machine m with a replica
// of block j on machine n, atomically. Capacities are unaffected (one
// replica leaves and one arrives on each machine); rack spread is
// verified for both blocks before mutation.
func (p *Placement) SwapReplicas(i BlockID, m topology.MachineID, j BlockID, n topology.MachineID) error {
	if i == j {
		return fmt.Errorf("%w: cannot swap block %d with itself", ErrBadSpec, i)
	}
	if m == n {
		return fmt.Errorf("%w: cannot swap on a single machine %d", ErrBadSpec, m)
	}
	bi, ok := p.blocks[i]
	if !ok {
		return fmt.Errorf("%w: block %d", ErrUnknownBlock, i)
	}
	bj, ok := p.blocks[j]
	if !ok {
		return fmt.Errorf("%w: block %d", ErrUnknownBlock, j)
	}
	if _, held := bi.replicas[m]; !held {
		return fmt.Errorf("%w: block %d on machine %d", ErrNotPlaced, i, m)
	}
	if _, held := bj.replicas[n]; !held {
		return fmt.Errorf("%w: block %d on machine %d", ErrNotPlaced, j, n)
	}
	if _, dup := bi.replicas[n]; dup {
		return fmt.Errorf("%w: block %d on machine %d", ErrAlreadyPlaced, i, n)
	}
	if _, dup := bj.replicas[m]; dup {
		return fmt.Errorf("%w: block %d on machine %d", ErrAlreadyPlaced, j, m)
	}
	if p.rackSpreadAfterMove(bi, m, n) < bi.spec.MinRacks && p.RackSpread(i) >= bi.spec.MinRacks {
		return fmt.Errorf("%w: block %d swap %d<->%d", ErrRackConstraint, i, m, n)
	}
	if p.rackSpreadAfterMove(bj, n, m) < bj.spec.MinRacks && p.RackSpread(j) >= bj.spec.MinRacks {
		return fmt.Errorf("%w: block %d swap %d<->%d", ErrRackConstraint, j, n, m)
	}

	pi, pj := bi.perReplica(), bj.perReplica()
	mRack := p.cluster.MustMachine(m).Rack
	nRack := p.cluster.MustMachine(n).Rack

	// i: m -> n
	delete(bi.replicas, m)
	if bi.rackCount[mRack]--; bi.rackCount[mRack] == 0 {
		delete(bi.rackCount, mRack)
	}
	bi.replicas[n] = struct{}{}
	bi.rackCount[nRack]++
	delete(p.machines[m].blocks, i)
	p.machines[n].blocks[i] = struct{}{}

	// j: n -> m
	delete(bj.replicas, n)
	if bj.rackCount[nRack]--; bj.rackCount[nRack] == 0 {
		delete(bj.rackCount, nRack)
	}
	bj.replicas[m] = struct{}{}
	bj.rackCount[mRack]++
	delete(p.machines[n].blocks, j)
	p.machines[m].blocks[j] = struct{}{}

	p.machines[m].load += pj - pi
	p.machines[n].load += pi - pj
	p.rackLoad[mRack] += pj - pi
	p.rackLoad[nRack] += pi - pj
	return nil
}

// CanSwap reports whether SwapReplicas(i, m, j, n) would succeed.
func (p *Placement) CanSwap(i BlockID, m topology.MachineID, j BlockID, n topology.MachineID) bool {
	if i == j || m == n {
		return false
	}
	bi, ok := p.blocks[i]
	if !ok {
		return false
	}
	bj, ok := p.blocks[j]
	if !ok {
		return false
	}
	if _, held := bi.replicas[m]; !held {
		return false
	}
	if _, held := bj.replicas[n]; !held {
		return false
	}
	if _, dup := bi.replicas[n]; dup {
		return false
	}
	if _, dup := bj.replicas[m]; dup {
		return false
	}
	if p.rackSpreadAfterMove(bi, m, n) < bi.spec.MinRacks && p.RackSpread(i) >= bi.spec.MinRacks {
		return false
	}
	if p.rackSpreadAfterMove(bj, n, m) < bj.spec.MinRacks && p.RackSpread(j) >= bj.spec.MinRacks {
		return false
	}
	return true
}

// HasReplica reports whether machine m holds a replica of block id.
func (p *Placement) HasReplica(id BlockID, m topology.MachineID) bool {
	b, ok := p.blocks[id]
	if !ok {
		return false
	}
	_, held := b.replicas[m]
	return held
}

// Replicas returns the machines holding block id, in ascending order.
func (p *Placement) Replicas(id BlockID) []topology.MachineID {
	b, ok := p.blocks[id]
	if !ok {
		return nil
	}
	out := make([]topology.MachineID, 0, len(b.replicas))
	for m := range b.replicas {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ReplicaCount returns k_i, the current replica count of block id (zero
// for unknown blocks).
func (p *Placement) ReplicaCount(id BlockID) int {
	b, ok := p.blocks[id]
	if !ok {
		return 0
	}
	return len(b.replicas)
}

// RackSpread returns the number of distinct racks holding block id.
func (p *Placement) RackSpread(id BlockID) int {
	b, ok := p.blocks[id]
	if !ok {
		return 0
	}
	return len(b.rackCount)
}

// PerReplicaPopularity returns p_i = P_i / k_i for block id (zero if
// unplaced).
func (p *Placement) PerReplicaPopularity(id BlockID) float64 {
	b, ok := p.blocks[id]
	if !ok {
		return 0
	}
	return b.perReplica()
}

// Load returns the popularity load of machine m.
func (p *Placement) Load(m topology.MachineID) float64 {
	if int(m) < 0 || int(m) >= len(p.machines) {
		return 0
	}
	return p.machines[m].load
}

// Loads returns the full machine-load vector indexed by MachineID.
func (p *Placement) Loads() []float64 {
	out := make([]float64, len(p.machines))
	for i := range p.machines {
		out[i] = p.machines[i].load
	}
	return out
}

// RackLoadOf returns the total popularity load of rack r.
func (p *Placement) RackLoadOf(r topology.RackID) float64 {
	if int(r) < 0 || int(r) >= len(p.rackLoad) {
		return 0
	}
	return p.rackLoad[r]
}

// Cost returns the optimization objective λ: the maximum machine load.
func (p *Placement) Cost() float64 {
	max := 0.0
	for i := range p.machines {
		if p.machines[i].load > max {
			max = p.machines[i].load
		}
	}
	return max
}

// Used returns the number of block replicas on machine m.
func (p *Placement) Used(m topology.MachineID) int {
	if int(m) < 0 || int(m) >= len(p.machines) {
		return 0
	}
	return len(p.machines[m].blocks)
}

// FreeCapacity returns the remaining replica slots on machine m.
func (p *Placement) FreeCapacity(m topology.MachineID) int {
	return p.cluster.Capacity(m) - p.Used(m)
}

// TotalReplicas returns Σ_i k_i over all blocks.
func (p *Placement) TotalReplicas() int { return p.replicas }

// BlocksOn returns the blocks stored on machine m, in ascending ID order.
func (p *Placement) BlocksOn(m topology.MachineID) []BlockID {
	if int(m) < 0 || int(m) >= len(p.machines) {
		return nil
	}
	out := make([]BlockID, 0, len(p.machines[m].blocks))
	for id := range p.machines[m].blocks {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// MaxLoadedMachine returns the machine with the highest load; ties break
// toward the lowest machine ID so the algorithms are deterministic.
func (p *Placement) MaxLoadedMachine() topology.MachineID {
	best, bestLoad := topology.MachineID(0), math.Inf(-1)
	for i := range p.machines {
		if p.machines[i].load > bestLoad {
			best, bestLoad = topology.MachineID(i), p.machines[i].load
		}
	}
	return best
}

// MinLoadedMachine returns the machine with the lowest load (lowest ID on
// ties).
func (p *Placement) MinLoadedMachine() topology.MachineID {
	best, bestLoad := topology.MachineID(0), math.Inf(1)
	for i := range p.machines {
		if p.machines[i].load < bestLoad {
			best, bestLoad = topology.MachineID(i), p.machines[i].load
		}
	}
	return best
}

// MaxLoadedMachineInRack returns the highest-loaded machine within rack r.
func (p *Placement) MaxLoadedMachineInRack(r topology.RackID) (topology.MachineID, error) {
	ms, err := p.cluster.MachinesInRack(r)
	if err != nil {
		return topology.NoMachine, err
	}
	best, bestLoad := topology.NoMachine, math.Inf(-1)
	for _, m := range ms {
		if p.machines[m].load > bestLoad {
			best, bestLoad = m, p.machines[m].load
		}
	}
	return best, nil
}

// MinLoadedMachineInRack returns the lowest-loaded machine within rack r.
func (p *Placement) MinLoadedMachineInRack(r topology.RackID) (topology.MachineID, error) {
	ms, err := p.cluster.MachinesInRack(r)
	if err != nil {
		return topology.NoMachine, err
	}
	best, bestLoad := topology.NoMachine, math.Inf(1)
	for _, m := range ms {
		if p.machines[m].load < bestLoad {
			best, bestLoad = m, p.machines[m].load
		}
	}
	return best, nil
}

// MaxPerReplicaPopularity returns p_max, the largest per-replica
// popularity across all placed blocks. It appears in the additive
// approximation bounds (Theorems 2 and 4).
func (p *Placement) MaxPerReplicaPopularity() float64 {
	max := 0.0
	for _, b := range p.blocks {
		if pr := b.perReplica(); pr > max {
			max = pr
		}
	}
	return max
}

// Feasible reports whether block id currently satisfies its node- and
// rack-level fault-tolerance requirements.
func (p *Placement) Feasible(id BlockID) bool {
	b, ok := p.blocks[id]
	if !ok {
		return false
	}
	return len(b.replicas) >= b.spec.MinReplicas && len(b.rackCount) >= b.spec.MinRacks
}

// CheckFeasible returns ErrInfeasible (wrapped, naming the first
// offending block) unless every block satisfies its requirements.
func (p *Placement) CheckFeasible() error {
	for _, id := range p.Blocks() {
		if !p.Feasible(id) {
			b := p.blocks[id]
			return fmt.Errorf("%w: block %d has %d replicas (need %d) across %d racks (need %d)",
				ErrInfeasible, id, len(b.replicas), b.spec.MinReplicas, len(b.rackCount), b.spec.MinRacks)
		}
	}
	return nil
}

// Clone deep-copies the placement. The clone shares the immutable
// cluster.
func (p *Placement) Clone() *Placement {
	c := &Placement{
		cluster:  p.cluster,
		blocks:   make(map[BlockID]*blockState, len(p.blocks)),
		machines: make([]machineState, len(p.machines)),
		rackLoad: make([]float64, len(p.rackLoad)),
		replicas: p.replicas,
	}
	copy(c.rackLoad, p.rackLoad)
	for i := range p.machines {
		c.machines[i].load = p.machines[i].load
		c.machines[i].blocks = make(map[BlockID]struct{}, len(p.machines[i].blocks))
		for id := range p.machines[i].blocks {
			c.machines[i].blocks[id] = struct{}{}
		}
	}
	for id, b := range p.blocks {
		nb := &blockState{
			spec:      b.spec,
			replicas:  make(map[topology.MachineID]struct{}, len(b.replicas)),
			rackCount: make(map[topology.RackID]int, len(b.rackCount)),
		}
		for m := range b.replicas {
			nb.replicas[m] = struct{}{}
		}
		for r, n := range b.rackCount {
			nb.rackCount[r] = n
		}
		c.blocks[id] = nb
	}
	return c
}

// Validate recomputes all derived state from scratch and compares it to
// the incremental bookkeeping. Intended for tests and fuzzing; it is
// O(blocks x replicas).
func (p *Placement) Validate() error {
	const eps = 1e-6
	loads := make([]float64, len(p.machines))
	rackLoads := make([]float64, len(p.rackLoad))
	counts := make([]int, len(p.machines))
	for id, b := range p.blocks {
		perReplica := b.perReplica()
		rackSeen := make(map[topology.RackID]int)
		for m := range b.replicas {
			mach, err := p.cluster.Machine(m)
			if err != nil {
				return fmt.Errorf("core: block %d on invalid machine %d: %w", id, m, err)
			}
			if _, ok := p.machines[m].blocks[id]; !ok {
				return fmt.Errorf("core: block %d lists machine %d but machine does not list block", id, m)
			}
			loads[m] += perReplica
			rackLoads[mach.Rack] += perReplica
			counts[m]++
			rackSeen[mach.Rack]++
		}
		if len(rackSeen) != len(b.rackCount) {
			return fmt.Errorf("core: block %d rack spread is %d, bookkeeping says %d", id, len(rackSeen), len(b.rackCount))
		}
		for r, n := range rackSeen {
			if b.rackCount[r] != n {
				return fmt.Errorf("core: block %d rack %d count is %d, bookkeeping says %d", id, r, n, b.rackCount[r])
			}
		}
	}
	for i := range p.machines {
		if len(p.machines[i].blocks) != counts[i] {
			return fmt.Errorf("core: machine %d holds %d blocks, bookkeeping says %d", i, counts[i], len(p.machines[i].blocks))
		}
		if counts[i] > p.cluster.Capacity(topology.MachineID(i)) {
			return fmt.Errorf("core: machine %d over capacity: %d > %d", i, counts[i], p.cluster.Capacity(topology.MachineID(i)))
		}
		if math.Abs(loads[i]-p.machines[i].load) > eps*(1+math.Abs(loads[i])) {
			return fmt.Errorf("core: machine %d load drift: recomputed %v, bookkeeping %v", i, loads[i], p.machines[i].load)
		}
		for id := range p.machines[i].blocks {
			b, ok := p.blocks[id]
			if !ok {
				return fmt.Errorf("core: machine %d lists unknown block %d", i, id)
			}
			if _, held := b.replicas[topology.MachineID(i)]; !held {
				return fmt.Errorf("core: machine %d lists block %d but block does not list machine", i, id)
			}
		}
	}
	for r := range p.rackLoad {
		if math.Abs(rackLoads[r]-p.rackLoad[r]) > eps*(1+math.Abs(rackLoads[r])) {
			return fmt.Errorf("core: rack %d load drift: recomputed %v, bookkeeping %v", r, rackLoads[r], p.rackLoad[r])
		}
	}
	total := 0
	for _, b := range p.blocks {
		total += len(b.replicas)
	}
	if total != p.replicas {
		return fmt.Errorf("core: replica counter drift: recomputed %d, bookkeeping %d", total, p.replicas)
	}
	return nil
}
