package core

import (
	"fmt"
	"math"
	"slices"

	"aurora/internal/loadindex"
	"aurora/internal/topology"
)

// Placement is the mutable assignment of block replicas to machines, with
// incremental load bookkeeping. It is the state all placement algorithms
// operate on.
//
// Beyond the per-machine load scalars, every mutation maintains two
// ordered structures the local search depends on (DESIGN.md "Hot-path
// data structures"):
//
//   - a loadindex.Index over machine loads, making the extreme-machine
//     queries (MaxLoadedMachine and friends) O(log M) instead of O(M);
//   - per machine, the held blocks sorted ascending by exact
//     (per-replica popularity, block ID), so the search iterates
//     candidate blocks without re-sorting per probe.
//
// Placement is not safe for concurrent use; the optimizer serializes
// access.
type Placement struct {
	cluster  *topology.Cluster
	blocks   map[BlockID]*blockState
	machines []machineState
	rackLoad []float64
	rackUsed []int // replicas stored per rack (disk-usage tie-breaks)
	replicas int   // cached Σ_i k_i
	idx      *loadindex.Index
}

// blockState tracks one block's holders. replicas is kept sorted
// ascending by machine ID: replica sets are small (k_i), so a sorted
// slice beats a map on every operation the hot path performs —
// membership probes, iteration, and cloning — and makes iteration order
// deterministic for free.
type blockState struct {
	spec      BlockSpec
	replicas  []topology.MachineID
	rackCount map[topology.RackID]int
}

// holdersFind returns the position of m in the ascending holder list s,
// and whether it is present (the insertion point when absent).
func holdersFind(s []topology.MachineID, m topology.MachineID) (int, bool) {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid] < m {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(s) && s[lo] == m
}

// hasHolder reports whether machine m holds a replica of b.
func (b *blockState) hasHolder(m topology.MachineID) bool {
	_, ok := holdersFind(b.replicas, m)
	return ok
}

// addHolder inserts m into b's holder list. The caller has verified m is
// not already present.
func (b *blockState) addHolder(m topology.MachineID) {
	i, _ := holdersFind(b.replicas, m)
	b.replicas = append(b.replicas, 0)
	copy(b.replicas[i+1:], b.replicas[i:])
	b.replicas[i] = m
}

// removeHolder deletes m from b's holder list. A miss means the
// incremental bookkeeping is corrupt, which is a bug.
func (b *blockState) removeHolder(m topology.MachineID) {
	i, ok := holdersFind(b.replicas, m)
	if !ok {
		panic(fmt.Sprintf("core: machine %d is not a holder of block %d", m, b.spec.ID))
	}
	copy(b.replicas[i:], b.replicas[i+1:])
	b.replicas = b.replicas[:len(b.replicas)-1]
}

// blockRef is one entry of a machine's popularity-sorted block list. The
// stored pop is bit-identical to the block's current per-replica
// popularity: perReplica() is a pure float64 division, so recomputing it
// from unchanged inputs reproduces the stored bits exactly, which is what
// lets removals locate entries by binary search.
type blockRef struct {
	id  BlockID
	pop float64
}

type machineState struct {
	load float64
	// sorted holds the machine's blocks ascending by (per-replica
	// popularity, ID) under the exact total order refLess. It is the
	// machine's only block registry: its length is the used capacity, and
	// machine→block membership queries go through the block's holder list
	// instead.
	sorted []blockRef
}

// refLess is the exact strict total order on (popularity, ID) keys. It
// deliberately uses no tolerance: a comparator with approximate ties is
// not transitive, so an incrementally maintained list could diverge from
// a freshly sorted one.
func refLess(aPop float64, aID BlockID, bPop float64, bID BlockID) bool {
	if aPop < bPop {
		return true
	}
	if aPop > bPop {
		return false
	}
	return aID < bID
}

// lowerBound returns the first index in s whose key is >= (pop, id).
// Hand-rolled so the hot path spends no allocations on closures.
func lowerBound(s []blockRef, pop float64, id BlockID) int {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if refLess(s[mid].pop, s[mid].id, pop, id) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// sortedInsert adds (id, pop) to machine m's ordered block list.
func (p *Placement) sortedInsert(m topology.MachineID, id BlockID, pop float64) {
	s := p.machines[m].sorted
	i := lowerBound(s, pop, id)
	s = append(s, blockRef{})
	copy(s[i+1:], s[i:])
	s[i] = blockRef{id: id, pop: pop}
	p.machines[m].sorted = s
}

// sortedRemove deletes (id, pop) from machine m's ordered block list. The
// pop key must be the exact value the entry was inserted with; a miss
// means the incremental bookkeeping is corrupt, which is a bug.
func (p *Placement) sortedRemove(m topology.MachineID, id BlockID, pop float64) {
	s := p.machines[m].sorted
	i := lowerBound(s, pop, id)
	if i >= len(s) || s[i].id != id {
		panic(fmt.Sprintf("core: machine %d has no sorted entry for block %d at popularity %v", m, id, pop))
	}
	copy(s[i:], s[i+1:])
	p.machines[m].sorted = s[:len(s)-1]
}

// addLoad applies a load delta to machine m, keeping the load index in
// sync. All load mutations go through here.
func (p *Placement) addLoad(m topology.MachineID, delta float64) {
	p.machines[m].load += delta
	p.idx.Update(int(m), p.machines[m].load)
}

// loadIndex exposes the incremental index to the search implementations
// in this package.
func (p *Placement) loadIndex() *loadindex.Index { return p.idx }

// NewPlacement creates an empty placement (no replicas) for the given
// blocks over the given cluster.
func NewPlacement(cluster *topology.Cluster, specs []BlockSpec) (*Placement, error) {
	if cluster == nil || cluster.NumMachines() == 0 {
		return nil, topology.ErrNoMachines
	}
	p := &Placement{
		cluster:  cluster,
		blocks:   make(map[BlockID]*blockState, len(specs)),
		machines: make([]machineState, cluster.NumMachines()),
		rackLoad: make([]float64, cluster.NumRacks()),
		rackUsed: make([]int, cluster.NumRacks()),
	}
	rackOf := cluster.RackAssignments()
	racks := make([]int, len(rackOf))
	for i, r := range rackOf {
		racks[i] = int(r)
	}
	p.idx = loadindex.New(make([]float64, cluster.NumMachines()), racks, cluster.NumRacks())
	for _, s := range specs {
		if err := p.AddBlock(s); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// Cluster returns the cluster this placement is defined over.
func (p *Placement) Cluster() *topology.Cluster { return p.cluster }

// AddBlock registers a new, unplaced block.
func (p *Placement) AddBlock(s BlockSpec) error {
	if err := s.Validate(); err != nil {
		return err
	}
	if _, ok := p.blocks[s.ID]; ok {
		return fmt.Errorf("%w: block %d", ErrDuplicateBlock, s.ID)
	}
	if s.MinRacks > p.cluster.NumRacks() {
		return fmt.Errorf("%w: block %d requires %d racks, cluster has %d",
			ErrBadSpec, s.ID, s.MinRacks, p.cluster.NumRacks())
	}
	if s.MinReplicas > p.cluster.NumMachines() {
		return fmt.Errorf("%w: block %d requires %d replicas, cluster has %d machines",
			ErrBadSpec, s.ID, s.MinReplicas, p.cluster.NumMachines())
	}
	p.blocks[s.ID] = &blockState{
		spec:      s,
		rackCount: make(map[topology.RackID]int),
	}
	return nil
}

// DeleteBlock removes a block and all its replicas from the placement.
func (p *Placement) DeleteBlock(id BlockID) error {
	b, ok := p.blocks[id]
	if !ok {
		return fmt.Errorf("%w: block %d", ErrUnknownBlock, id)
	}
	perReplica := b.perReplica()
	for _, m := range b.replicas {
		p.sortedRemove(m, id, perReplica)
		p.addLoad(m, -perReplica)
		rack := p.cluster.MustMachine(m).Rack
		p.rackLoad[rack] -= perReplica
		p.rackUsed[rack]--
	}
	p.replicas -= len(b.replicas)
	delete(p.blocks, id)
	return nil
}

// SetPopularity updates a block's total popularity, rescaling the load it
// contributes to its current holders. This is how each optimization epoch
// feeds fresh usage-monitor data into an existing placement.
func (p *Placement) SetPopularity(id BlockID, popularity float64) error {
	if popularity < 0 {
		return fmt.Errorf("%w: negative popularity %v", ErrBadSpec, popularity)
	}
	b, ok := p.blocks[id]
	if !ok {
		return fmt.Errorf("%w: block %d", ErrUnknownBlock, id)
	}
	old := b.perReplica()
	b.spec.Popularity = popularity
	p.reloadBlock(id, b, old)
	return nil
}

// Spec returns the spec of block id.
func (p *Placement) Spec(id BlockID) (BlockSpec, error) {
	b, ok := p.blocks[id]
	if !ok {
		return BlockSpec{}, fmt.Errorf("%w: block %d", ErrUnknownBlock, id)
	}
	return b.spec, nil
}

// Blocks returns all block IDs in ascending order.
func (p *Placement) Blocks() []BlockID {
	return p.AppendBlocks(make([]BlockID, 0, len(p.blocks)))
}

// AppendBlocks appends all block IDs to buf in ascending order and
// returns the extended slice. Callers that poll repeatedly (invariant
// checks, epoch loops) reuse buf to avoid per-call allocations.
func (p *Placement) AppendBlocks(buf []BlockID) []BlockID {
	start := len(buf)
	for id := range p.blocks {
		buf = append(buf, id)
	}
	slices.Sort(buf[start:])
	return buf
}

// NumBlocks reports how many blocks are registered.
func (p *Placement) NumBlocks() int { return len(p.blocks) }

// perReplica is the load one replica of the block contributes: P_i / k_i
// with the *current* replica count (zero if unplaced).
func (b *blockState) perReplica() float64 {
	if len(b.replicas) == 0 {
		return 0
	}
	return b.spec.Popularity / float64(len(b.replicas))
}

// reloadBlock recomputes the load contribution of block id on all its
// holders after its per-replica popularity changed from oldPerReplica.
// The skip test is bit-equality, not floatEq: the sorted block lists key
// on exact popularity values, so any bit-level change must reposition the
// entries even when numerically negligible.
func (p *Placement) reloadBlock(id BlockID, b *blockState, oldPerReplica float64) {
	newPerReplica := b.perReplica()
	if math.Float64bits(newPerReplica) == math.Float64bits(oldPerReplica) {
		return
	}
	delta := newPerReplica - oldPerReplica
	for _, m := range b.replicas {
		p.sortedRemove(m, id, oldPerReplica)
		p.sortedInsert(m, id, newPerReplica)
		p.addLoad(m, delta)
		p.rackLoad[p.cluster.MustMachine(m).Rack] += delta
	}
}

// AddReplica places one replica of block id on machine m. The demand for
// the block re-divides among the enlarged replica set, so loads of the
// existing holders shrink.
func (p *Placement) AddReplica(id BlockID, m topology.MachineID) error {
	b, ok := p.blocks[id]
	if !ok {
		return fmt.Errorf("%w: block %d", ErrUnknownBlock, id)
	}
	mach, err := p.cluster.Machine(m)
	if err != nil {
		return err
	}
	if b.hasHolder(m) {
		return fmt.Errorf("%w: block %d on machine %d", ErrAlreadyPlaced, id, m)
	}
	if len(p.machines[m].sorted) >= mach.Capacity {
		return fmt.Errorf("%w: machine %d", ErrMachineFull, m)
	}
	old := b.perReplica()
	b.addHolder(m)
	p.replicas++
	b.rackCount[mach.Rack]++
	// The new holder picks up the new per-replica load; existing holders
	// are rescaled from the old value.
	newPerReplica := b.perReplica()
	p.sortedInsert(m, id, newPerReplica)
	p.addLoad(m, newPerReplica)
	p.rackLoad[mach.Rack] += newPerReplica
	p.rackUsed[mach.Rack]++
	// Rescale the others (the new holder was already added at the new
	// rate, so exclude it by adjusting with the old rate first).
	for _, holder := range b.replicas {
		if holder == m {
			continue
		}
		p.sortedRemove(holder, id, old)
		p.sortedInsert(holder, id, newPerReplica)
		p.addLoad(holder, newPerReplica-old)
		p.rackLoad[p.cluster.MustMachine(holder).Rack] += newPerReplica - old
	}
	return nil
}

// RemoveReplica removes the replica of block id from machine m. It does
// not enforce MinReplicas — lazy deletion and intermediate optimizer
// states legitimately drop below it; call Feasible to check the final
// state.
func (p *Placement) RemoveReplica(id BlockID, m topology.MachineID) error {
	b, ok := p.blocks[id]
	if !ok {
		return fmt.Errorf("%w: block %d", ErrUnknownBlock, id)
	}
	if !b.hasHolder(m) {
		return fmt.Errorf("%w: block %d on machine %d", ErrNotPlaced, id, m)
	}
	mach := p.cluster.MustMachine(m)
	old := b.perReplica()
	b.removeHolder(m)
	p.replicas--
	if b.rackCount[mach.Rack]--; b.rackCount[mach.Rack] == 0 {
		delete(b.rackCount, mach.Rack)
	}
	p.sortedRemove(m, id, old)
	p.addLoad(m, -old)
	p.rackLoad[mach.Rack] -= old
	p.rackUsed[mach.Rack]--
	p.reloadBlock(id, b, old)
	return nil
}

// MoveReplica relocates a replica of block id from machine `from` to
// machine `to` atomically: the replica count is unchanged and the rack
// spread requirement is verified before anything is mutated.
func (p *Placement) MoveReplica(id BlockID, from, to topology.MachineID) error {
	b, ok := p.blocks[id]
	if !ok {
		return fmt.Errorf("%w: block %d", ErrUnknownBlock, id)
	}
	if !b.hasHolder(from) {
		return fmt.Errorf("%w: block %d on machine %d", ErrNotPlaced, id, from)
	}
	if b.hasHolder(to) {
		return fmt.Errorf("%w: block %d on machine %d", ErrAlreadyPlaced, id, to)
	}
	toMach, err := p.cluster.Machine(to)
	if err != nil {
		return err
	}
	if len(p.machines[to].sorted) >= toMach.Capacity {
		return fmt.Errorf("%w: machine %d", ErrMachineFull, to)
	}
	if p.rackSpreadAfterMove(b, from, to) < b.spec.MinRacks && p.RackSpread(id) >= b.spec.MinRacks {
		return fmt.Errorf("%w: block %d move %d->%d", ErrRackConstraint, id, from, to)
	}
	perReplica := b.perReplica()
	fromMach := p.cluster.MustMachine(from)
	b.removeHolder(from)
	if b.rackCount[fromMach.Rack]--; b.rackCount[fromMach.Rack] == 0 {
		delete(b.rackCount, fromMach.Rack)
	}
	p.sortedRemove(from, id, perReplica)
	p.addLoad(from, -perReplica)
	p.rackLoad[fromMach.Rack] -= perReplica
	p.rackUsed[fromMach.Rack]--

	b.addHolder(to)
	b.rackCount[toMach.Rack]++
	p.sortedInsert(to, id, perReplica)
	p.addLoad(to, perReplica)
	p.rackLoad[toMach.Rack] += perReplica
	p.rackUsed[toMach.Rack]++
	return nil
}

// rackSpreadAfterMove computes the number of distinct racks holding block
// b if one replica moved from machine `from` to machine `to`.
func (p *Placement) rackSpreadAfterMove(b *blockState, from, to topology.MachineID) int {
	return rackSpreadAfterMoveRacks(b,
		p.cluster.MustMachine(from).Rack, p.cluster.MustMachine(to).Rack)
}

// rackSpreadAfterMoveRacks is rackSpreadAfterMove for callers that
// already resolved the racks (the search hoists them per machine pair).
func rackSpreadAfterMoveRacks(b *blockState, fromRack, toRack topology.RackID) int {
	spread := len(b.rackCount)
	if fromRack == toRack {
		return spread
	}
	if b.rackCount[fromRack] == 1 {
		spread--
	}
	if b.rackCount[toRack] == 0 {
		spread++
	}
	return spread
}

// CanMove reports whether MoveReplica(id, from, to) would succeed.
func (p *Placement) CanMove(id BlockID, from, to topology.MachineID) bool {
	b, ok := p.blocks[id]
	if !ok {
		return false
	}
	if !b.hasHolder(from) {
		return false
	}
	if b.hasHolder(to) {
		return false
	}
	toMach, err := p.cluster.Machine(to)
	if err != nil || len(p.machines[to].sorted) >= toMach.Capacity {
		return false
	}
	if p.rackSpreadAfterMove(b, from, to) < b.spec.MinRacks && p.RackSpread(id) >= b.spec.MinRacks {
		return false
	}
	return true
}

// SwapReplicas exchanges a replica of block i on machine m with a replica
// of block j on machine n, atomically. Capacities are unaffected (one
// replica leaves and one arrives on each machine); rack spread is
// verified for both blocks before mutation.
func (p *Placement) SwapReplicas(i BlockID, m topology.MachineID, j BlockID, n topology.MachineID) error {
	if i == j {
		return fmt.Errorf("%w: cannot swap block %d with itself", ErrBadSpec, i)
	}
	if m == n {
		return fmt.Errorf("%w: cannot swap on a single machine %d", ErrBadSpec, m)
	}
	bi, ok := p.blocks[i]
	if !ok {
		return fmt.Errorf("%w: block %d", ErrUnknownBlock, i)
	}
	bj, ok := p.blocks[j]
	if !ok {
		return fmt.Errorf("%w: block %d", ErrUnknownBlock, j)
	}
	if !bi.hasHolder(m) {
		return fmt.Errorf("%w: block %d on machine %d", ErrNotPlaced, i, m)
	}
	if !bj.hasHolder(n) {
		return fmt.Errorf("%w: block %d on machine %d", ErrNotPlaced, j, n)
	}
	if bi.hasHolder(n) {
		return fmt.Errorf("%w: block %d on machine %d", ErrAlreadyPlaced, i, n)
	}
	if bj.hasHolder(m) {
		return fmt.Errorf("%w: block %d on machine %d", ErrAlreadyPlaced, j, m)
	}
	if p.rackSpreadAfterMove(bi, m, n) < bi.spec.MinRacks && p.RackSpread(i) >= bi.spec.MinRacks {
		return fmt.Errorf("%w: block %d swap %d<->%d", ErrRackConstraint, i, m, n)
	}
	if p.rackSpreadAfterMove(bj, n, m) < bj.spec.MinRacks && p.RackSpread(j) >= bj.spec.MinRacks {
		return fmt.Errorf("%w: block %d swap %d<->%d", ErrRackConstraint, j, n, m)
	}

	pi, pj := bi.perReplica(), bj.perReplica()
	mRack := p.cluster.MustMachine(m).Rack
	nRack := p.cluster.MustMachine(n).Rack

	// i: m -> n
	bi.removeHolder(m)
	if bi.rackCount[mRack]--; bi.rackCount[mRack] == 0 {
		delete(bi.rackCount, mRack)
	}
	bi.addHolder(n)
	bi.rackCount[nRack]++
	p.sortedRemove(m, i, pi)
	p.sortedInsert(n, i, pi)

	// j: n -> m
	bj.removeHolder(n)
	if bj.rackCount[nRack]--; bj.rackCount[nRack] == 0 {
		delete(bj.rackCount, nRack)
	}
	bj.addHolder(m)
	bj.rackCount[mRack]++
	p.sortedRemove(n, j, pj)
	p.sortedInsert(m, j, pj)

	p.addLoad(m, pj-pi)
	p.addLoad(n, pi-pj)
	p.rackLoad[mRack] += pj - pi
	p.rackLoad[nRack] += pi - pj
	// rackUsed is unchanged: each machine loses one replica and gains one.
	return nil
}

// CanSwap reports whether SwapReplicas(i, m, j, n) would succeed.
func (p *Placement) CanSwap(i BlockID, m topology.MachineID, j BlockID, n topology.MachineID) bool {
	if i == j || m == n {
		return false
	}
	bi, ok := p.blocks[i]
	if !ok {
		return false
	}
	bj, ok := p.blocks[j]
	if !ok {
		return false
	}
	if !bi.hasHolder(m) {
		return false
	}
	if !bj.hasHolder(n) {
		return false
	}
	if bi.hasHolder(n) {
		return false
	}
	if bj.hasHolder(m) {
		return false
	}
	if p.rackSpreadAfterMove(bi, m, n) < bi.spec.MinRacks && p.RackSpread(i) >= bi.spec.MinRacks {
		return false
	}
	if p.rackSpreadAfterMove(bj, n, m) < bj.spec.MinRacks && p.RackSpread(j) >= bj.spec.MinRacks {
		return false
	}
	return true
}

// HasReplica reports whether machine m holds a replica of block id.
func (p *Placement) HasReplica(id BlockID, m topology.MachineID) bool {
	b, ok := p.blocks[id]
	if !ok {
		return false
	}
	return b.hasHolder(m)
}

// Replicas returns the machines holding block id, in ascending order.
func (p *Placement) Replicas(id BlockID) []topology.MachineID {
	b, ok := p.blocks[id]
	if !ok {
		return nil
	}
	return p.AppendReplicas(id, make([]topology.MachineID, 0, len(b.replicas)))
}

// AppendReplicas appends the machines holding block id to buf in
// ascending order and returns the extended slice. The holder list is
// stored sorted, so this is a straight copy.
func (p *Placement) AppendReplicas(id BlockID, buf []topology.MachineID) []topology.MachineID {
	b, ok := p.blocks[id]
	if !ok {
		return buf
	}
	return append(buf, b.replicas...)
}

// ReplicaCount returns k_i, the current replica count of block id (zero
// for unknown blocks).
func (p *Placement) ReplicaCount(id BlockID) int {
	b, ok := p.blocks[id]
	if !ok {
		return 0
	}
	return len(b.replicas)
}

// RackSpread returns the number of distinct racks holding block id.
func (p *Placement) RackSpread(id BlockID) int {
	b, ok := p.blocks[id]
	if !ok {
		return 0
	}
	return len(b.rackCount)
}

// PerReplicaPopularity returns p_i = P_i / k_i for block id (zero if
// unplaced).
func (p *Placement) PerReplicaPopularity(id BlockID) float64 {
	b, ok := p.blocks[id]
	if !ok {
		return 0
	}
	return b.perReplica()
}

// Load returns the popularity load of machine m.
func (p *Placement) Load(m topology.MachineID) float64 {
	if int(m) < 0 || int(m) >= len(p.machines) {
		return 0
	}
	return p.machines[m].load
}

// Loads returns the full machine-load vector indexed by MachineID.
func (p *Placement) Loads() []float64 {
	return p.AppendLoads(make([]float64, 0, len(p.machines)))
}

// AppendLoads appends the machine-load vector (indexed by MachineID from
// the start of the appended region) to buf and returns the extended
// slice.
func (p *Placement) AppendLoads(buf []float64) []float64 {
	for i := range p.machines {
		buf = append(buf, p.machines[i].load)
	}
	return buf
}

// RackLoadOf returns the total popularity load of rack r.
func (p *Placement) RackLoadOf(r topology.RackID) float64 {
	if int(r) < 0 || int(r) >= len(p.rackLoad) {
		return 0
	}
	return p.rackLoad[r]
}

// Cost returns the optimization objective λ: the maximum machine load.
// The floor at zero matches the scan it replaced, which started from 0.
func (p *Placement) Cost() float64 {
	if c := p.machines[p.idx.Max()].load; c > 0 {
		return c
	}
	return 0
}

// Used returns the number of block replicas on machine m.
func (p *Placement) Used(m topology.MachineID) int {
	if int(m) < 0 || int(m) >= len(p.machines) {
		return 0
	}
	return len(p.machines[m].sorted)
}

// FreeCapacity returns the remaining replica slots on machine m.
func (p *Placement) FreeCapacity(m topology.MachineID) int {
	return p.cluster.Capacity(m) - p.Used(m)
}

// TotalReplicas returns Σ_i k_i over all blocks.
func (p *Placement) TotalReplicas() int { return p.replicas }

// BlocksOn returns the blocks stored on machine m, in ascending ID order.
func (p *Placement) BlocksOn(m topology.MachineID) []BlockID {
	if int(m) < 0 || int(m) >= len(p.machines) {
		return nil
	}
	return p.AppendBlocksOn(m, make([]BlockID, 0, len(p.machines[m].sorted)))
}

// AppendBlocksOn appends the blocks stored on machine m to buf in
// ascending ID order and returns the extended slice.
func (p *Placement) AppendBlocksOn(m topology.MachineID, buf []BlockID) []BlockID {
	if int(m) < 0 || int(m) >= len(p.machines) {
		return buf
	}
	start := len(buf)
	for _, ref := range p.machines[m].sorted {
		buf = append(buf, ref.id)
	}
	slices.Sort(buf[start:])
	return buf
}

// MaxLoadedMachine returns the machine with the highest load; ties break
// toward the lowest machine ID so the algorithms are deterministic. The
// index's prefer-left tie-break reproduces the linear scan's keep-first
// behavior exactly.
func (p *Placement) MaxLoadedMachine() topology.MachineID {
	return topology.MachineID(p.idx.Max())
}

// MinLoadedMachine returns the machine with the lowest load (lowest ID on
// ties).
func (p *Placement) MinLoadedMachine() topology.MachineID {
	return topology.MachineID(p.idx.Min())
}

// MaxLoadedMachineInRack returns the highest-loaded machine within rack r.
func (p *Placement) MaxLoadedMachineInRack(r topology.RackID) (topology.MachineID, error) {
	if int(r) < 0 || int(r) >= p.cluster.NumRacks() {
		return topology.NoMachine, fmt.Errorf("%w: rack %d", topology.ErrUnknownRack, r)
	}
	return topology.MachineID(p.idx.MaxInRack(int(r))), nil
}

// MinLoadedMachineInRack returns the lowest-loaded machine within rack r.
func (p *Placement) MinLoadedMachineInRack(r topology.RackID) (topology.MachineID, error) {
	if int(r) < 0 || int(r) >= p.cluster.NumRacks() {
		return topology.NoMachine, fmt.Errorf("%w: rack %d", topology.ErrUnknownRack, r)
	}
	return topology.MachineID(p.idx.MinInRack(int(r))), nil
}

// MaxPerReplicaPopularity returns p_max, the largest per-replica
// popularity across all placed blocks. It appears in the additive
// approximation bounds (Theorems 2 and 4).
func (p *Placement) MaxPerReplicaPopularity() float64 {
	max := 0.0
	for _, b := range p.blocks {
		if pr := b.perReplica(); pr > max {
			max = pr
		}
	}
	return max
}

// Feasible reports whether block id currently satisfies its node- and
// rack-level fault-tolerance requirements.
func (p *Placement) Feasible(id BlockID) bool {
	b, ok := p.blocks[id]
	if !ok {
		return false
	}
	return len(b.replicas) >= b.spec.MinReplicas && len(b.rackCount) >= b.spec.MinRacks
}

// CheckFeasible returns ErrInfeasible (wrapped, naming the first
// offending block) unless every block satisfies its requirements.
func (p *Placement) CheckFeasible() error {
	for _, id := range p.Blocks() {
		if !p.Feasible(id) {
			b := p.blocks[id]
			return fmt.Errorf("%w: block %d has %d replicas (need %d) across %d racks (need %d)",
				ErrInfeasible, id, len(b.replicas), b.spec.MinReplicas, len(b.rackCount), b.spec.MinRacks)
		}
	}
	return nil
}

// Clone deep-copies the placement. The clone shares the immutable
// cluster.
func (p *Placement) Clone() *Placement {
	c := &Placement{
		cluster:  p.cluster,
		blocks:   make(map[BlockID]*blockState, len(p.blocks)),
		machines: make([]machineState, len(p.machines)),
		rackLoad: make([]float64, len(p.rackLoad)),
		rackUsed: make([]int, len(p.rackUsed)),
		replicas: p.replicas,
	}
	copy(c.rackLoad, p.rackLoad)
	copy(c.rackUsed, p.rackUsed)
	for i := range p.machines {
		c.machines[i].load = p.machines[i].load
		c.machines[i].sorted = append([]blockRef(nil), p.machines[i].sorted...)
	}
	c.idx = p.idx.Clone()
	for id, b := range p.blocks {
		nb := &blockState{
			spec:      b.spec,
			replicas:  append([]topology.MachineID(nil), b.replicas...),
			rackCount: make(map[topology.RackID]int, len(b.rackCount)),
		}
		for r, n := range b.rackCount {
			nb.rackCount[r] = n
		}
		c.blocks[id] = nb
	}
	return c
}

// Validate recomputes all derived state from scratch and compares it to
// the incremental bookkeeping. Intended for tests and fuzzing; it is
// O(blocks x replicas).
func (p *Placement) Validate() error {
	const eps = 1e-6
	loads := make([]float64, len(p.machines))
	rackLoads := make([]float64, len(p.rackLoad))
	counts := make([]int, len(p.machines))
	for id, b := range p.blocks {
		perReplica := b.perReplica()
		rackSeen := make(map[topology.RackID]int)
		for k, m := range b.replicas {
			if k > 0 && b.replicas[k-1] >= m {
				return fmt.Errorf("core: block %d holder list out of order at %d: %d !< %d",
					id, k, b.replicas[k-1], m)
			}
			mach, err := p.cluster.Machine(m)
			if err != nil {
				return fmt.Errorf("core: block %d on invalid machine %d: %w", id, m, err)
			}
			s := p.machines[m].sorted
			if i := lowerBound(s, perReplica, id); i >= len(s) || s[i].id != id {
				return fmt.Errorf("core: block %d lists machine %d but machine's sorted list has no entry", id, m)
			}
			loads[m] += perReplica
			rackLoads[mach.Rack] += perReplica
			counts[m]++
			rackSeen[mach.Rack]++
		}
		if len(rackSeen) != len(b.rackCount) {
			return fmt.Errorf("core: block %d rack spread is %d, bookkeeping says %d", id, len(rackSeen), len(b.rackCount))
		}
		for r, n := range rackSeen {
			if b.rackCount[r] != n {
				return fmt.Errorf("core: block %d rack %d count is %d, bookkeeping says %d", id, r, n, b.rackCount[r])
			}
		}
	}
	for i := range p.machines {
		s := p.machines[i].sorted
		if len(s) != counts[i] {
			return fmt.Errorf("core: machine %d sorted list has %d entries, recomputed count is %d", i, len(s), counts[i])
		}
		for j, ref := range s {
			if j > 0 && !refLess(s[j-1].pop, s[j-1].id, ref.pop, ref.id) {
				return fmt.Errorf("core: machine %d sorted list out of order at %d: (%v,%d) !< (%v,%d)",
					i, j, s[j-1].pop, s[j-1].id, ref.pop, ref.id)
			}
			b, ok := p.blocks[ref.id]
			if !ok {
				return fmt.Errorf("core: machine %d sorted list names unknown block %d", i, ref.id)
			}
			if !b.hasHolder(topology.MachineID(i)) {
				return fmt.Errorf("core: machine %d lists block %d but block does not list machine", i, ref.id)
			}
			if math.Float64bits(ref.pop) != math.Float64bits(b.perReplica()) {
				return fmt.Errorf("core: machine %d sorted entry for block %d stores popularity %v, current per-replica is %v",
					i, ref.id, ref.pop, b.perReplica())
			}
		}
		if counts[i] > p.cluster.Capacity(topology.MachineID(i)) {
			return fmt.Errorf("core: machine %d over capacity: %d > %d", i, counts[i], p.cluster.Capacity(topology.MachineID(i)))
		}
		if math.Abs(loads[i]-p.machines[i].load) > eps*(1+math.Abs(loads[i])) {
			return fmt.Errorf("core: machine %d load drift: recomputed %v, bookkeeping %v", i, loads[i], p.machines[i].load)
		}
	}
	for r := range p.rackLoad {
		if math.Abs(rackLoads[r]-p.rackLoad[r]) > eps*(1+math.Abs(rackLoads[r])) {
			return fmt.Errorf("core: rack %d load drift: recomputed %v, bookkeeping %v", r, rackLoads[r], p.rackLoad[r])
		}
	}
	rackCounts := make([]int, len(p.rackUsed))
	for i := range p.machines {
		if r, err := p.cluster.RackOf(topology.MachineID(i)); err == nil {
			rackCounts[r] += len(p.machines[i].sorted)
		}
	}
	for r := range p.rackUsed {
		if rackCounts[r] != p.rackUsed[r] {
			return fmt.Errorf("core: rack %d used drift: recomputed %d, bookkeeping %d", r, rackCounts[r], p.rackUsed[r])
		}
	}
	total := 0
	for _, b := range p.blocks {
		total += len(b.replicas)
	}
	if total != p.replicas {
		return fmt.Errorf("core: replica counter drift: recomputed %d, bookkeeping %d", total, p.replicas)
	}
	// The load index must agree bit-for-bit with the bookkeeping loads
	// (not the recomputed ones): every index update is fed the exact
	// incremental load value.
	bookkeeping := make([]float64, len(p.machines))
	for i := range p.machines {
		bookkeeping[i] = p.machines[i].load
	}
	if err := p.idx.Validate(bookkeeping); err != nil {
		return fmt.Errorf("core: load index: %w", err)
	}
	return nil
}
