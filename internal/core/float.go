package core

import "math"

// floatEps is the relative tolerance for comparing load and popularity
// values. Loads are maintained incrementally (AddReplica/RemoveReplica
// apply per-replica deltas), so two mathematically equal loads can
// drift apart by a few ulps; this tolerance is far above that drift and
// far below any meaningful popularity difference (popularities are
// access counts, so distinct values differ by at least 1/k_i ratios).
const floatEps = 1e-9

// floatEq reports whether two load/popularity values are equal within
// floatEps, relative to their magnitude. It is the epsilon helper the
// strict-float lint rule (//lint:strictfloat) requires in place of
// ==/!= on floats.
func floatEq(a, b float64) bool {
	return math.Abs(a-b) <= floatEps*(1+math.Max(math.Abs(a), math.Abs(b)))
}
