package core

import (
	"fmt"
	"sort"

	"aurora/internal/topology"
)

// OpKind enumerates the local-search operations from Sections III.A and
// III.B of the paper.
type OpKind int

// The four local-search operations.
const (
	OpMove     OpKind = iota + 1 // Move(m, i, n): move block i from m to n (same rack)
	OpSwap                       // Swap(m, i, n, j): exchange i on m with j on n (same rack)
	OpRackMove                   // RackMove(r, m, i, t, n): move i across racks
	OpRackSwap                   // RackSwap(r, m, i, t, n, j): swap across racks
)

// String names the operation kind.
func (k OpKind) String() string {
	switch k {
	case OpMove:
		return "Move"
	case OpSwap:
		return "Swap"
	case OpRackMove:
		return "RackMove"
	case OpRackSwap:
		return "RackSwap"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// Op describes one executed local-search operation, for accounting:
// reconfiguration cost in the paper is measured in block movements, and
// each Move/RackMove is one movement while each Swap/RackSwap is two.
type Op struct {
	Kind       OpKind
	Block      BlockID
	From, To   topology.MachineID
	OtherBlock BlockID // the j block for swaps; 0 otherwise
}

// BlockMovements returns the number of physical block transfers the
// operation causes.
func (o Op) BlockMovements() int {
	switch o.Kind {
	case OpSwap, OpRackSwap:
		return 2
	default:
		return 1
	}
}

// SearchOptions tune the local search.
type SearchOptions struct {
	// Epsilon in [0, 1) is the admissibility threshold from Section IV:
	// only operations that substantially reduce cost are performed, so
	// larger values trade balance quality for fewer block movements
	// (Theorem 9); the paper sweeps Epsilon in {0.1 .. 0.9}.
	//
	// Concretely, operations on a machine pair (m, n) — m the loaded
	// machine — are admissible only while the pair is imbalanced by more
	// than an Epsilon fraction: L_m - L_n > Epsilon*L_m. Once a pair is
	// within Epsilon of balanced it is left alone, so the search
	// terminates with the extreme pair satisfying
	// L_m <= (L_n + p_i)/(1-Epsilon), giving SOL <= (OPT+p_max)/(1-eps)
	// — the (2+O(eps))/(4+O(eps)) guarantees of Theorem 9. Epsilon = 0
	// recovers the plain Algorithm 1/2 bounds. (The paper's literal
	// definition, "reduces solution cost by at least eps*SOL", performs
	// no operations at all on realistic instances — no single block move
	// cuts the global maximum load by 10% — so this relative-imbalance
	// reading is used; it reproduces the monotone moves-versus-balance
	// tradeoff of Figures 3-5.)
	Epsilon float64
	// MaxIterations bounds the number of operations performed; 0 means
	// unbounded (the strict-improvement requirement still guarantees
	// termination).
	MaxIterations int
	// DisableSwap restricts the search to Move operations only — an
	// ablation knob: without Swap, Theorem 2's capacity argument fails
	// and full machines block rebalancing.
	DisableSwap bool
	// OnOp, if non-nil, observes every executed operation.
	OnOp func(Op)
}

// SearchResult summarizes one local-search run.
type SearchResult struct {
	Iterations  int     // operations performed
	Movements   int     // physical block movements (swaps count twice)
	InitialCost float64 // λ before the search
	FinalCost   float64 // λ after the search
}

// minImprovement is the relative floor below which a float "improvement"
// is considered noise; it prevents non-termination from rounding drift
// when Epsilon = 0.
const minImprovement = 1e-9

// pairAdmissible reports whether the pair (high, low) is imbalanced
// enough that operations on it are admissible at all. See
// SearchOptions.Epsilon.
func pairAdmissible(high, low, epsilon float64) bool {
	return high-low > epsilon*high
}

// improves reports whether reducing the pair cost from `high` to
// `newPairCost` is a strict improvement above float noise.
func improves(high, newPairCost float64) bool {
	return high-newPairCost > minImprovement*(1+high)
}

// candidate is an evaluated, feasible, admissible operation together with
// the pair cost it would leave behind.
type candidate struct {
	op          Op
	newPairCost float64
}

// bestPairOp evaluates Move and Swap operations from machine m (loaded)
// to machine n (unloaded) and returns the admissible candidate with the
// lowest resulting pair cost, or ok=false when none exists.
//
// Following the proof of Theorem 2, blocks held by both machines are
// skipped (a machine stores at most one replica of a block, and moving a
// shared block would change its replication factor); the scan considers
// blocks on m in descending per-replica popularity.
func bestPairOp(p *Placement, m, n topology.MachineID, epsilon float64) (candidate, bool) {
	return bestPairOpSwap(p, m, n, epsilon, true)
}

// bestPairOpSwap is bestPairOp with swaps optionally disabled.
func bestPairOpSwap(p *Placement, m, n topology.MachineID, epsilon float64, allowSwap bool) (candidate, bool) {
	lm, ln := p.Load(m), p.Load(n)
	if lm <= ln {
		return candidate{}, false
	}
	// Pairs within epsilon of balanced are left alone (Section IV), and
	// this check doubles as a cheap prefilter when callers probe many
	// pairs.
	if !pairAdmissible(lm, ln, epsilon) {
		return candidate{}, false
	}
	exclusive := exclusiveBlocksByPopularity(p, m, n)
	var swapCands []swapCand
	if allowSwap {
		swapCands = swapCandidates(p, m, n)
	}
	best := candidate{newPairCost: lm}
	found := false
	for _, i := range exclusive {
		pi := p.PerReplicaPopularity(i)
		// Any operation that relocates block i improves the pair cost by
		// at most p_i, and the scan is in descending popularity, so once
		// p_i falls below the noise floor nothing further can qualify.
		if pi <= minImprovement*(1+lm) {
			break
		}
		// Try the move first: it is one block transfer instead of two.
		if p.CanMove(i, m, n) {
			cost := pairCost(lm-pi, ln+pi)
			if improves(lm, cost) && cost < best.newPairCost {
				best = candidate{
					op:          Op{Kind: moveKind(p, m, n), Block: i, From: m, To: n},
					newPairCost: cost,
				}
				found = true
			}
		}
		// Try swapping i against the best counterpart on n.
		if !allowSwap {
			continue
		}
		if j, cost, ok := bestSwapCounterpart(p, swapCands, i, pi, m, n, lm, ln); ok {
			if improves(lm, cost) && cost < best.newPairCost {
				best = candidate{
					op:          Op{Kind: swapKind(p, m, n), Block: i, From: m, To: n, OtherBlock: j},
					newPairCost: cost,
				}
				found = true
			}
		}
	}
	return best, found
}

// swapCand is a precomputed swap counterpart on the low machine.
type swapCand struct {
	id  BlockID
	pop float64
}

// swapCandidates lists blocks on n that m does not hold, sorted by
// per-replica popularity ascending (ties by ID), the order
// bestSwapCounterpart's search exploits.
func swapCandidates(p *Placement, m, n topology.MachineID) []swapCand {
	var out []swapCand
	for _, j := range p.BlocksOn(n) {
		if p.HasReplica(j, m) {
			continue
		}
		out = append(out, swapCand{id: j, pop: p.PerReplicaPopularity(j)})
	}
	sort.Slice(out, func(a, b int) bool {
		if !floatEq(out[a].pop, out[b].pop) {
			return out[a].pop < out[b].pop
		}
		return out[a].id < out[b].id
	})
	return out
}

// bestSwapCounterpart finds the block j on n (not on m) that minimizes
// the post-swap pair cost max(L_m - p_i + p_j, L_n + p_i - p_j). As a
// function of p_j that cost is V-shaped with minimum at
// p_j* = p_i - (L_m - L_n)/2, so the search starts at the candidate
// nearest p_j* and expands outward, stopping a direction as soon as its
// cost can no longer beat the best found.
func bestSwapCounterpart(p *Placement, cands []swapCand, i BlockID, pi float64, m, n topology.MachineID, lm, ln float64) (BlockID, float64, bool) {
	// Only counterparts with p_j < p_i strictly lower m's load.
	hi := sort.Search(len(cands), func(k int) bool { return cands[k].pop >= pi })
	if hi == 0 {
		return 0, 0, false
	}
	target := pi - (lm-ln)/2
	start := sort.Search(hi, func(k int) bool { return cands[k].pop >= target })

	costAt := func(pj float64) float64 { return pairCost(lm-pi+pj, ln+pi-pj) }
	bestJ := BlockID(-1)
	bestCost := lm
	found := false
	consider := func(k int) bool {
		c := cands[k]
		cost := costAt(c.pop)
		if cost >= bestCost {
			return false // V-shape: farther candidates on this side are worse
		}
		if p.CanSwap(i, m, c.id, n) {
			bestJ, bestCost, found = c.id, cost, true
		}
		return true
	}
	for k := start; k < hi; k++ { // rightward from the valley
		if !consider(k) {
			break
		}
	}
	for k := start - 1; k >= 0; k-- { // leftward from the valley
		if !consider(k) {
			break
		}
	}
	return bestJ, bestCost, found
}

// exclusiveBlocksByPopularity lists the blocks on m that are not on n,
// sorted by per-replica popularity descending (ties by ID for
// determinism).
func exclusiveBlocksByPopularity(p *Placement, m, n topology.MachineID) []BlockID {
	var out []BlockID
	for _, id := range p.BlocksOn(m) {
		if !p.HasReplica(id, n) {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(a, b int) bool {
		pa, pb := p.PerReplicaPopularity(out[a]), p.PerReplicaPopularity(out[b])
		if !floatEq(pa, pb) {
			return pa > pb
		}
		return out[a] < out[b]
	})
	return out
}

func pairCost(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func moveKind(p *Placement, m, n topology.MachineID) OpKind {
	if p.Cluster().SameRack(m, n) {
		return OpMove
	}
	return OpRackMove
}

func swapKind(p *Placement, m, n topology.MachineID) OpKind {
	if p.Cluster().SameRack(m, n) {
		return OpSwap
	}
	return OpRackSwap
}

// apply executes a chosen candidate and notifies the observer.
func applyCandidate(p *Placement, c candidate, opts *SearchOptions, res *SearchResult) error {
	var err error
	switch c.op.Kind {
	case OpMove, OpRackMove:
		err = p.MoveReplica(c.op.Block, c.op.From, c.op.To)
	case OpSwap, OpRackSwap:
		err = p.SwapReplicas(c.op.Block, c.op.From, c.op.OtherBlock, c.op.To)
	default:
		err = fmt.Errorf("core: unknown op kind %v", c.op.Kind)
	}
	if err != nil {
		return fmt.Errorf("core: applying %v: %w", c.op.Kind, err)
	}
	res.Iterations++
	res.Movements += c.op.BlockMovements()
	if opts.OnOp != nil {
		opts.OnOp(c.op)
	}
	return nil
}
