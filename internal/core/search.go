package core

import (
	"fmt"

	"aurora/internal/topology"
)

// OpKind enumerates the local-search operations from Sections III.A and
// III.B of the paper.
type OpKind int

// The four local-search operations.
const (
	OpMove     OpKind = iota + 1 // Move(m, i, n): move block i from m to n (same rack)
	OpSwap                       // Swap(m, i, n, j): exchange i on m with j on n (same rack)
	OpRackMove                   // RackMove(r, m, i, t, n): move i across racks
	OpRackSwap                   // RackSwap(r, m, i, t, n, j): swap across racks
)

// String names the operation kind.
func (k OpKind) String() string {
	switch k {
	case OpMove:
		return "Move"
	case OpSwap:
		return "Swap"
	case OpRackMove:
		return "RackMove"
	case OpRackSwap:
		return "RackSwap"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// Op describes one executed local-search operation, for accounting:
// reconfiguration cost in the paper is measured in block movements, and
// each Move/RackMove is one movement while each Swap/RackSwap is two.
type Op struct {
	Kind       OpKind
	Block      BlockID
	From, To   topology.MachineID
	OtherBlock BlockID // the j block for swaps; 0 otherwise
}

// BlockMovements returns the number of physical block transfers the
// operation causes.
func (o Op) BlockMovements() int {
	switch o.Kind {
	case OpSwap, OpRackSwap:
		return 2
	default:
		return 1
	}
}

// SearchOptions tune the local search.
type SearchOptions struct {
	// Epsilon in [0, 1) is the admissibility threshold from Section IV:
	// only operations that substantially reduce cost are performed, so
	// larger values trade balance quality for fewer block movements
	// (Theorem 9); the paper sweeps Epsilon in {0.1 .. 0.9}.
	//
	// Concretely, operations on a machine pair (m, n) — m the loaded
	// machine — are admissible only while the pair is imbalanced by more
	// than an Epsilon fraction: L_m - L_n > Epsilon*L_m. Once a pair is
	// within Epsilon of balanced it is left alone, so the search
	// terminates with the extreme pair satisfying
	// L_m <= (L_n + p_i)/(1-Epsilon), giving SOL <= (OPT+p_max)/(1-eps)
	// — the (2+O(eps))/(4+O(eps)) guarantees of Theorem 9. Epsilon = 0
	// recovers the plain Algorithm 1/2 bounds. (The paper's literal
	// definition, "reduces solution cost by at least eps*SOL", performs
	// no operations at all on realistic instances — no single block move
	// cuts the global maximum load by 10% — so this relative-imbalance
	// reading is used; it reproduces the monotone moves-versus-balance
	// tradeoff of Figures 3-5.)
	Epsilon float64
	// MaxIterations bounds the number of operations performed; 0 means
	// unbounded (the strict-improvement requirement still guarantees
	// termination).
	MaxIterations int
	// DisableSwap restricts the search to Move operations only — an
	// ablation knob: without Swap, Theorem 2's capacity argument fails
	// and full machines block rebalancing.
	DisableSwap bool
	// OnOp, if non-nil, observes every executed operation.
	OnOp func(Op)
}

// SearchResult summarizes one local-search run.
type SearchResult struct {
	Iterations  int     // operations performed
	Movements   int     // physical block movements (swaps count twice)
	InitialCost float64 // λ before the search
	FinalCost   float64 // λ after the search
	// Per-kind operation counts; they sum to Iterations. The telemetry
	// layer exports them so a live run shows which of the paper's four
	// operations the search is spending its movement budget on.
	Moves     int
	Swaps     int
	RackMoves int
	RackSwaps int
}

// minImprovement is the relative floor below which a float "improvement"
// is considered noise; it prevents non-termination from rounding drift
// when Epsilon = 0.
const minImprovement = 1e-9

// pairAdmissible reports whether the pair (high, low) is imbalanced
// enough that operations on it are admissible at all. See
// SearchOptions.Epsilon.
func pairAdmissible(high, low, epsilon float64) bool {
	return high-low > epsilon*high
}

// improves reports whether reducing the pair cost from `high` to
// `newPairCost` is a strict improvement above float noise.
func improves(high, newPairCost float64) bool {
	return high-newPairCost > minImprovement*(1+high)
}

// candidate is an evaluated, feasible, admissible operation together with
// the pair cost it would leave behind.
type candidate struct {
	op          Op
	newPairCost float64
}

// bestPairOp evaluates Move and Swap operations from machine m (loaded)
// to machine n (unloaded) and returns the admissible candidate with the
// lowest resulting pair cost, or ok=false when none exists.
//
// Following the proof of Theorem 2, blocks held by both machines are
// skipped (a machine stores at most one replica of a block, and moving a
// shared block would change its replication factor); the scan considers
// blocks on m in descending per-replica popularity.
func bestPairOp(p *Placement, m, n topology.MachineID, epsilon float64) (candidate, bool) {
	return bestPairOpSwap(p, m, n, epsilon, true)
}

// bestPairOpSwap is bestPairOp with swaps optionally disabled.
//
// It allocates nothing: both machines' candidate blocks come from the
// popularity-sorted lists Placement maintains incrementally, so there is
// no per-probe rebuild or sort. The visit order matches the reference
// scan (per-replica popularity descending, ties by ascending block ID):
// the stored lists are ascending by (popularity, ID), so equal-popularity
// runs are located from the top of the list and each run is walked
// forward.
//lint:hotpath
func bestPairOpSwap(p *Placement, m, n topology.MachineID, epsilon float64, allowSwap bool) (candidate, bool) {
	lm, ln := p.Load(m), p.Load(n)
	if lm <= ln {
		return candidate{}, false
	}
	// Pairs within epsilon of balanced are left alone (Section IV), and
	// this check doubles as a cheap prefilter when callers probe many
	// pairs.
	if !pairAdmissible(lm, ln, epsilon) {
		return candidate{}, false
	}
	// Per-pair facts hoisted out of the scan: rack IDs for the spread
	// checks and whether n has room for a move (swaps need no room — one
	// replica leaves as one arrives). The scan mutates nothing, so these
	// stay valid throughout.
	mRack := p.cluster.MustMachine(m).Rack
	nMach := p.cluster.MustMachine(n)
	nRack := nMach.Rack
	nHasRoom := len(p.machines[n].sorted) < nMach.Capacity
	mine := p.machines[m].sorted
	best := candidate{newPairCost: lm}
	found := false
	for hi := len(mine); hi > 0; {
		runPop := mine[hi-1].pop
		// Any operation that relocates a block improves the pair cost by
		// at most its popularity, and runs are visited in descending
		// popularity, so once it falls below the noise floor nothing
		// further can qualify.
		if runPop <= minImprovement*(1+lm) {
			break
		}
		lo := hi
		for lo > 0 && !(mine[lo-1].pop < runPop) {
			lo--
		}
		for k := lo; k < hi; k++ {
			i, pi := mine[k].id, mine[k].pop
			b := p.blocks[i]
			// Blocks held by both machines are skipped (Theorem 2): a
			// machine stores at most one replica, and relocating a shared
			// block would change its replication factor.
			if b.hasHolder(n) {
				continue
			}
			// Try the move first: it is one block transfer instead of two.
			// Feasibility is CanMove minus the checks the scan already
			// guarantees (block exists, held on m, absent from n).
			if nHasRoom && moveKeepsSpread(b, mRack, nRack) {
				cost := pairCost(lm-pi, ln+pi)
				if improves(lm, cost) && cost < best.newPairCost {
					best = candidate{
						op:          Op{Kind: moveKind(p, m, n), Block: i, From: m, To: n},
						newPairCost: cost,
					}
					found = true
				}
			}
			// Try swapping i against the best counterpart on n.
			if !allowSwap {
				continue
			}
			if j, cost, ok := bestSwapCounterpart(p, i, b, pi, m, n, mRack, nRack, lm, ln); ok {
				if improves(lm, cost) && cost < best.newPairCost {
					best = candidate{
						op:          Op{Kind: swapKind(p, m, n), Block: i, From: m, To: n, OtherBlock: j},
						newPairCost: cost,
					}
					found = true
				}
			}
		}
		hi = lo
	}
	return best, found
}

// popLowerBound returns the first index in s whose popularity is >= pop,
// ignoring IDs. Hand-rolled to keep the hot path closure-free.
func popLowerBound(s []blockRef, pop float64) int {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid].pop < pop {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// moveKeepsSpread reports whether relocating one replica of b from
// fromRack to toRack keeps its rack-spread constraint satisfiable: the
// spread after the move meets MinRacks, or it was already below (the
// search never repairs spread, only refuses to worsen a satisfied
// constraint). This is the rack leg of CanMove/CanSwap with the machine
// lookups hoisted to the caller.
func moveKeepsSpread(b *blockState, fromRack, toRack topology.RackID) bool {
	return rackSpreadAfterMoveRacks(b, fromRack, toRack) >= b.spec.MinRacks ||
		len(b.rackCount) < b.spec.MinRacks
}

// bestSwapCounterpart finds the block j on n (not on m) that minimizes
// the post-swap pair cost max(L_m - p_i + p_j, L_n + p_i - p_j). As a
// function of p_j that cost is V-shaped with minimum at
// p_j* = p_i - (L_m - L_n)/2, so the search starts at the candidate
// nearest p_j* and expands outward, stopping a direction as soon as its
// cost can no longer beat the best found.
//
// It searches n's incrementally sorted block list directly instead of a
// prefiltered copy; blocks shared with m are skipped in place. Stopping
// at a shared block whose cost can no longer win is sound because the
// cost is monotone non-decreasing along each walk direction: every later
// candidate, shared or not, is at least as bad.
//
// bi is i's block state and mRack/nRack the pair's racks, hoisted by the
// caller. The callers' scan invariants (i held on m and not on n, j held
// on n, i != j, m != n) replace the corresponding CanSwap lookups.
//lint:hotpath
func bestSwapCounterpart(p *Placement, i BlockID, bi *blockState, pi float64, m, n topology.MachineID, mRack, nRack topology.RackID, lm, ln float64) (BlockID, float64, bool) {
	// If sending i to n's rack would break i's spread, no counterpart is
	// feasible at all.
	if !moveKeepsSpread(bi, mRack, nRack) {
		return 0, 0, false
	}
	cands := p.machines[n].sorted
	// Only counterparts with p_j < p_i strictly lower m's load.
	hi := popLowerBound(cands, pi)
	if hi == 0 {
		return 0, 0, false
	}
	target := pi - (lm-ln)/2
	start := popLowerBound(cands[:hi], target)

	bestJ := BlockID(-1)
	bestCost := lm
	found := false
	consider := func(k int) bool {
		c := cands[k]
		cost := pairCost(lm-pi+c.pop, ln+pi-c.pop)
		if cost >= bestCost {
			return false // V-shape: farther candidates on this side are worse
		}
		bj := p.blocks[c.id]
		if !bj.hasHolder(m) && moveKeepsSpread(bj, nRack, mRack) {
			bestJ, bestCost, found = c.id, cost, true
		}
		return true
	}
	for k := start; k < hi; k++ { // rightward from the valley
		if !consider(k) {
			break
		}
	}
	for k := start - 1; k >= 0; k-- { // leftward from the valley
		if !consider(k) {
			break
		}
	}
	return bestJ, bestCost, found
}

func pairCost(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func moveKind(p *Placement, m, n topology.MachineID) OpKind {
	if p.Cluster().SameRack(m, n) {
		return OpMove
	}
	return OpRackMove
}

func swapKind(p *Placement, m, n topology.MachineID) OpKind {
	if p.Cluster().SameRack(m, n) {
		return OpSwap
	}
	return OpRackSwap
}

// apply executes a chosen candidate and notifies the observer.
func applyCandidate(p *Placement, c candidate, opts *SearchOptions, res *SearchResult) error {
	var err error
	switch c.op.Kind {
	case OpMove, OpRackMove:
		err = p.MoveReplica(c.op.Block, c.op.From, c.op.To)
	case OpSwap, OpRackSwap:
		err = p.SwapReplicas(c.op.Block, c.op.From, c.op.OtherBlock, c.op.To)
	default:
		err = fmt.Errorf("core: unknown op kind %v", c.op.Kind)
	}
	if err != nil {
		return fmt.Errorf("core: applying %v: %w", c.op.Kind, err)
	}
	res.Iterations++
	res.Movements += c.op.BlockMovements()
	switch c.op.Kind {
	case OpMove:
		res.Moves++
	case OpSwap:
		res.Swaps++
	case OpRackMove:
		res.RackMoves++
	case OpRackSwap:
		res.RackSwaps++
	}
	if opts.OnOp != nil {
		opts.OnOp(c.op)
	}
	return nil
}
