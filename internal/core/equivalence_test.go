package core

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"reflect"
	"testing"

	"aurora/internal/topology"
)

// The indexed hot path must be a pure performance change: on any
// instance, both local searches must execute exactly the operation
// sequence the retained reference implementation executes, and land on
// bit-identical costs. These tests assert that, op for op, over
// randomized BP-Node/BP-Rack/BP-Replicate instances.

// captureOps runs search on p and records every executed operation.
func captureOps(p *Placement, opts SearchOptions,
	search func(*Placement, SearchOptions) (SearchResult, error)) ([]Op, SearchResult, error) {
	var ops []Op
	opts.OnOp = func(o Op) { ops = append(ops, o) }
	res, err := search(p, opts)
	return ops, res, err
}

func TestSearchEquivalenceProperty(t *testing.T) {
	searches := []struct {
		name    string
		indexed func(*Placement, SearchOptions) (SearchResult, error)
		ref     func(*Placement, SearchOptions) (SearchResult, error)
	}{
		{"node", BPNodeSearch, refBPNodeSearch},
		{"rack", BPRackSearch, refBPRackSearch},
	}
	cases := []struct {
		eps         float64
		disableSwap bool
	}{
		{0, false},
		{0.3, false},
		{0.7, false},
		{0.3, true},
	}
	for _, s := range searches {
		t.Run(s.name, func(t *testing.T) {
			for seed := uint64(0); seed < 40; seed++ {
				p, _, err := buildRandomInstance(seed)
				if errors.Is(err, ErrMachineFull) {
					continue
				}
				if err != nil {
					t.Fatalf("seed %d: build: %v", seed, err)
				}
				for _, c := range cases {
					opts := SearchOptions{Epsilon: c.eps, DisableSwap: c.disableSwap}
					a, b := p.Clone(), p.Clone()
					gotOps, gotRes, err := captureOps(a, opts, s.indexed)
					if err != nil {
						t.Fatalf("seed %d %+v: indexed: %v", seed, c, err)
					}
					wantOps, wantRes, err := captureOps(b, opts, s.ref)
					if err != nil {
						t.Fatalf("seed %d %+v: reference: %v", seed, c, err)
					}
					if !reflect.DeepEqual(gotOps, wantOps) {
						t.Fatalf("seed %d %+v: op sequences diverge:\nindexed   %v\nreference %v",
							seed, c, gotOps, wantOps)
					}
					if gotRes != wantRes {
						t.Fatalf("seed %d %+v: results diverge: indexed %+v, reference %+v",
							seed, c, gotRes, wantRes)
					}
					if ga, gb := a.Cost(), b.Cost(); ga != gb {
						t.Fatalf("seed %d %+v: final costs diverge: %v vs %v", seed, c, ga, gb)
					}
					if err := a.Validate(); err != nil {
						t.Fatalf("seed %d %+v: indexed placement invalid after search: %v", seed, c, err)
					}
				}
			}
		})
	}
}

// TestOptimizeEquivalenceProperty covers BP-Replicate: a full optimizer
// period (Algorithm 3 targets + replication + eviction + rack-aware
// search) on the indexed implementation must produce the same replication
// decisions and the same search ops as replicatePhase followed by the
// reference search.
func TestOptimizeEquivalenceProperty(t *testing.T) {
	type event struct {
		kind     string
		block    BlockID
		from, to topology.MachineID
	}
	for seed := uint64(100); seed < 130; seed++ {
		p, specs, err := buildRandomInstance(seed)
		if errors.Is(err, ErrMachineFull) {
			continue
		}
		if err != nil {
			t.Fatalf("seed %d: build: %v", seed, err)
		}
		budget := p.TotalReplicas() + int(seed%16)
		base := OptimizerOptions{
			Epsilon:           0.2,
			RackAware:         true,
			ReplicationBudget: budget,
			MaxPerBlock:       len(specs),
		}

		a, b := p.Clone(), p.Clone()
		var gotEvents []event
		optsA := base
		optsA.OnReplicate = func(id BlockID, from, to topology.MachineID) {
			gotEvents = append(gotEvents, event{"replicate", id, from, to})
		}
		optsA.OnEvict = func(id BlockID, m topology.MachineID) {
			gotEvents = append(gotEvents, event{"evict", id, m, topology.NoMachine})
		}
		var gotOps []Op
		optsA.OnOp = func(o Op) { gotOps = append(gotOps, o) }
		gotRes, err := Optimize(a, optsA)
		if err != nil {
			t.Fatalf("seed %d: optimize: %v", seed, err)
		}

		// Reference period: same replication phase, then the reference
		// rack search.
		var wantEvents []event
		optsB := base
		optsB.OnReplicate = func(id BlockID, from, to topology.MachineID) {
			wantEvents = append(wantEvents, event{"replicate", id, from, to})
		}
		optsB.OnEvict = func(id BlockID, m topology.MachineID) {
			wantEvents = append(wantEvents, event{"evict", id, m, topology.NoMachine})
		}
		var wantRef OptimizeResult
		if err := replicatePhase(b, &optsB, &wantRef); err != nil {
			t.Fatalf("seed %d: reference replicate: %v", seed, err)
		}
		wantOps, wantSearch, err := captureOps(b, SearchOptions{Epsilon: base.Epsilon}, refBPRackSearch)
		if err != nil {
			t.Fatalf("seed %d: reference search: %v", seed, err)
		}

		if !reflect.DeepEqual(gotEvents, wantEvents) {
			t.Fatalf("seed %d: replication events diverge:\nindexed   %v\nreference %v",
				seed, gotEvents, wantEvents)
		}
		if !reflect.DeepEqual(gotOps, wantOps) {
			t.Fatalf("seed %d: search ops diverge:\nindexed   %v\nreference %v",
				seed, gotOps, wantOps)
		}
		if gotRes.Search != wantSearch {
			t.Fatalf("seed %d: search results diverge: %+v vs %+v", seed, gotRes.Search, wantSearch)
		}
		if ca, cb := a.Cost(), b.Cost(); ca != cb {
			t.Fatalf("seed %d: final costs diverge: %v vs %v", seed, ca, cb)
		}
	}
}

// TestAccessorEquivalenceProperty drives a random mutation stream through
// a placement and checks, after every mutation, that the index-backed
// extreme-machine accessors agree with the linear scans they replaced —
// including the masked query used for stuck-source tracking.
func TestAccessorEquivalenceProperty(t *testing.T) {
	for seed := uint64(200); seed < 215; seed++ {
		p, specs, err := buildRandomInstance(seed)
		if errors.Is(err, ErrMachineFull) {
			continue
		}
		if err != nil {
			t.Fatalf("seed %d: build: %v", seed, err)
		}
		rng := rand.New(rand.NewPCG(seed, 42))
		machines := p.Cluster().Machines()
		racks := p.Cluster().Racks()
		for step := 0; step < 300; step++ {
			id := specs[rng.IntN(len(specs))].ID
			switch rng.IntN(5) {
			case 0:
				_ = p.AddReplica(id, machines[rng.IntN(len(machines))])
			case 1:
				reps := p.Replicas(id)
				if len(reps) > 1 {
					_ = p.RemoveReplica(id, reps[rng.IntN(len(reps))])
				}
			case 2:
				reps := p.Replicas(id)
				if len(reps) > 0 {
					_ = p.MoveReplica(id, reps[rng.IntN(len(reps))], machines[rng.IntN(len(machines))])
				}
			case 3:
				_ = p.SetPopularity(id, float64(rng.IntN(200)))
			case 4:
				j := specs[rng.IntN(len(specs))].ID
				ri, rj := p.Replicas(id), p.Replicas(j)
				if len(ri) > 0 && len(rj) > 0 {
					_ = p.SwapReplicas(id, ri[rng.IntN(len(ri))], j, rj[rng.IntN(len(rj))])
				}
			}
			desc := fmt.Sprintf("seed %d step %d", seed, step)
			if got, want := p.MaxLoadedMachine(), refMaxLoadedMachine(p); got != want {
				t.Fatalf("%s: MaxLoadedMachine = %d, reference = %d", desc, got, want)
			}
			if got, want := p.MinLoadedMachine(), refMinLoadedMachine(p); got != want {
				t.Fatalf("%s: MinLoadedMachine = %d, reference = %d", desc, got, want)
			}
			if got, want := p.Cost(), refCost(p); got != want {
				t.Fatalf("%s: Cost = %v, reference = %v", desc, got, want)
			}
			for _, r := range racks {
				gotMax, _ := p.MaxLoadedMachineInRack(r)
				wantMax, _ := refMaxLoadedMachineInRack(p, r)
				if gotMax != wantMax {
					t.Fatalf("%s: MaxLoadedMachineInRack(%d) = %d, reference = %d", desc, r, gotMax, wantMax)
				}
				gotMin, _ := p.MinLoadedMachineInRack(r)
				wantMin, _ := refMinLoadedMachineInRack(p, r)
				if gotMin != wantMin {
					t.Fatalf("%s: MinLoadedMachineInRack(%d) = %d, reference = %d", desc, r, gotMin, wantMin)
				}
			}
			// Masked query vs the stuck-map scan.
			stuck := make(map[topology.MachineID]bool)
			idx := p.loadIndex()
			for _, m := range machines {
				if rng.IntN(3) == 0 {
					stuck[m] = true
					idx.Mask(int(m))
				}
			}
			minLoad := p.Load(p.MinLoadedMachine())
			gotM, gotOK := idx.MaxUnmasked(minLoad)
			wantM, wantOK := refMaxLoadedExcluding(p, stuck, minLoad)
			if gotOK != wantOK || (gotOK && topology.MachineID(gotM) != wantM) {
				t.Fatalf("%s: MaxUnmasked = (%d, %v), reference = (%d, %v)", desc, gotM, gotOK, wantM, wantOK)
			}
			idx.ClearMasks()
			if err := p.Validate(); err != nil {
				t.Fatalf("%s: %v", desc, err)
			}
		}
	}
}

// TestPairOpEquivalence compares the indexed pair evaluation against the
// reference directly, over every (max, min)-flavored machine pair of
// random instances. This catches divergence even when the full search
// happens not to visit a pair.
func TestPairOpEquivalence(t *testing.T) {
	for seed := uint64(300); seed < 330; seed++ {
		p, _, err := buildRandomInstance(seed)
		if errors.Is(err, ErrMachineFull) {
			continue
		}
		if err != nil {
			t.Fatalf("seed %d: build: %v", seed, err)
		}
		machines := p.Cluster().Machines()
		for _, eps := range []float64{0, 0.3, 0.7} {
			for _, allowSwap := range []bool{true, false} {
				for _, m := range machines {
					for _, n := range machines {
						if m == n {
							continue
						}
						got, gotOK := bestPairOpSwap(p, m, n, eps, allowSwap)
						want, wantOK := refBestPairOpSwap(p, m, n, eps, allowSwap)
						if gotOK != wantOK || got != want {
							t.Fatalf("seed %d eps %v swap %v pair (%d,%d): indexed (%+v, %v), reference (%+v, %v)",
								seed, eps, allowSwap, m, n, got, gotOK, want, wantOK)
						}
					}
				}
			}
		}
	}
}

// TestRackTargetEquivalence checks the scratch-buffer target builder
// against the rebuild-and-sort reference.
func TestRackTargetEquivalence(t *testing.T) {
	for seed := uint64(400); seed < 430; seed++ {
		p, _, err := buildRandomInstance(seed)
		if errors.Is(err, ErrMachineFull) {
			continue
		}
		if err != nil {
			t.Fatalf("seed %d: build: %v", seed, err)
		}
		racks := p.Cluster().Racks()
		got := appendRackMinTargets(p, nil, p.Cluster().NumRacks())
		want := refRackMinTargets(p, racks)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: targets diverge:\nindexed   %v\nreference %v", seed, got, want)
		}
	}
}
