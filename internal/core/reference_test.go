package core

import (
	"math"
	"sort"

	"aurora/internal/topology"
)

// This file retains the pre-index implementations of the local search and
// the extreme-machine queries: linear scans over all machines and
// per-probe rebuild+sort of the candidate block lists. They are the
// executable specification the equivalence property tests compare the
// indexed hot path against, op for op.
//
// The comparators are the exact total orders the indexed structures
// maintain ((popularity, ID) and (load, machine)); a tolerance-based
// comparator is not transitive, so it cannot define the common order both
// implementations must agree on.

// refMaxLoadedMachine is the linear-scan MaxLoadedMachine (keep-first on
// ties).
func refMaxLoadedMachine(p *Placement) topology.MachineID {
	best, bestLoad := topology.MachineID(0), negInf()
	for i := range p.machines {
		if p.machines[i].load > bestLoad {
			best, bestLoad = topology.MachineID(i), p.machines[i].load
		}
	}
	return best
}

// refMinLoadedMachine is the linear-scan MinLoadedMachine.
func refMinLoadedMachine(p *Placement) topology.MachineID {
	best, bestLoad := topology.MachineID(0), posInf()
	for i := range p.machines {
		if p.machines[i].load < bestLoad {
			best, bestLoad = topology.MachineID(i), p.machines[i].load
		}
	}
	return best
}

// refMaxLoadedMachineInRack is the linear-scan per-rack maximum.
func refMaxLoadedMachineInRack(p *Placement, r topology.RackID) (topology.MachineID, error) {
	ms, err := p.cluster.MachinesInRack(r)
	if err != nil {
		return topology.NoMachine, err
	}
	best, bestLoad := topology.NoMachine, negInf()
	for _, m := range ms {
		if p.machines[m].load > bestLoad {
			best, bestLoad = m, p.machines[m].load
		}
	}
	return best, nil
}

// refMinLoadedMachineInRack is the linear-scan per-rack minimum.
func refMinLoadedMachineInRack(p *Placement, r topology.RackID) (topology.MachineID, error) {
	ms, err := p.cluster.MachinesInRack(r)
	if err != nil {
		return topology.NoMachine, err
	}
	best, bestLoad := topology.NoMachine, posInf()
	for _, m := range ms {
		if p.machines[m].load < bestLoad {
			best, bestLoad = m, p.machines[m].load
		}
	}
	return best, nil
}

// refMaxLoadedExcluding is the stuck-set scan the masked index replaces:
// the most-loaded machine not in the stuck set with load above minLoad.
func refMaxLoadedExcluding(p *Placement, stuck map[topology.MachineID]bool, minLoad float64) (topology.MachineID, bool) {
	best := topology.NoMachine
	bestLoad := minLoad
	for _, m := range p.Cluster().Machines() {
		if stuck[m] {
			continue
		}
		if l := p.Load(m); l > bestLoad {
			best, bestLoad = m, l
		}
	}
	return best, best != topology.NoMachine
}

// refExclusiveBlocksByPopularity rebuilds and sorts the blocks on m that
// are not on n, per-replica popularity descending, ties by ascending ID.
func refExclusiveBlocksByPopularity(p *Placement, m, n topology.MachineID) []BlockID {
	var out []BlockID
	for _, id := range p.BlocksOn(m) {
		if !p.HasReplica(id, n) {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(a, b int) bool {
		pa, pb := p.PerReplicaPopularity(out[a]), p.PerReplicaPopularity(out[b])
		if pa != pb {
			return pa > pb
		}
		return out[a] < out[b]
	})
	return out
}

// refSwapCand mirrors the pre-index precomputed counterpart entries.
type refSwapCand struct {
	id  BlockID
	pop float64
}

// refSwapCandidates rebuilds and sorts the blocks on n that m does not
// hold, popularity ascending, ties by ID.
func refSwapCandidates(p *Placement, m, n topology.MachineID) []refSwapCand {
	var out []refSwapCand
	for _, j := range p.BlocksOn(n) {
		if p.HasReplica(j, m) {
			continue
		}
		out = append(out, refSwapCand{id: j, pop: p.PerReplicaPopularity(j)})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].pop != out[b].pop {
			return out[a].pop < out[b].pop
		}
		return out[a].id < out[b].id
	})
	return out
}

// refBestSwapCounterpart is the V-shaped search over the prefiltered
// candidate list.
func refBestSwapCounterpart(p *Placement, cands []refSwapCand, i BlockID, pi float64, m, n topology.MachineID, lm, ln float64) (BlockID, float64, bool) {
	hi := sort.Search(len(cands), func(k int) bool { return cands[k].pop >= pi })
	if hi == 0 {
		return 0, 0, false
	}
	target := pi - (lm-ln)/2
	start := sort.Search(hi, func(k int) bool { return cands[k].pop >= target })

	bestJ := BlockID(-1)
	bestCost := lm
	found := false
	consider := func(k int) bool {
		c := cands[k]
		cost := pairCost(lm-pi+c.pop, ln+pi-c.pop)
		if cost >= bestCost {
			return false
		}
		if p.CanSwap(i, m, c.id, n) {
			bestJ, bestCost, found = c.id, cost, true
		}
		return true
	}
	for k := start; k < hi; k++ {
		if !consider(k) {
			break
		}
	}
	for k := start - 1; k >= 0; k-- {
		if !consider(k) {
			break
		}
	}
	return bestJ, bestCost, found
}

// refBestPairOpSwap is the pre-index pair evaluation: rebuild both sorted
// candidate lists for every probed pair.
func refBestPairOpSwap(p *Placement, m, n topology.MachineID, epsilon float64, allowSwap bool) (candidate, bool) {
	lm, ln := p.Load(m), p.Load(n)
	if lm <= ln {
		return candidate{}, false
	}
	if !pairAdmissible(lm, ln, epsilon) {
		return candidate{}, false
	}
	exclusive := refExclusiveBlocksByPopularity(p, m, n)
	var swapCands []refSwapCand
	if allowSwap {
		swapCands = refSwapCandidates(p, m, n)
	}
	best := candidate{newPairCost: lm}
	found := false
	for _, i := range exclusive {
		pi := p.PerReplicaPopularity(i)
		if pi <= minImprovement*(1+lm) {
			break
		}
		if p.CanMove(i, m, n) {
			cost := pairCost(lm-pi, ln+pi)
			if improves(lm, cost) && cost < best.newPairCost {
				best = candidate{
					op:          Op{Kind: moveKind(p, m, n), Block: i, From: m, To: n},
					newPairCost: cost,
				}
				found = true
			}
		}
		if !allowSwap {
			continue
		}
		if j, cost, ok := refBestSwapCounterpart(p, swapCands, i, pi, m, n, lm, ln); ok {
			if improves(lm, cost) && cost < best.newPairCost {
				best = candidate{
					op:          Op{Kind: swapKind(p, m, n), Block: i, From: m, To: n, OtherBlock: j},
					newPairCost: cost,
				}
				found = true
			}
		}
	}
	return best, found
}

// refBPNodeSearch is BPNodeSearch with the stuck map and linear scans of
// the pre-index implementation.
func refBPNodeSearch(p *Placement, opts SearchOptions) (SearchResult, error) {
	res := SearchResult{InitialCost: refCost(p)}
	stuck := make(map[topology.MachineID]bool)
	verified := false
	for opts.MaxIterations == 0 || res.Iterations < opts.MaxIterations {
		n := refMinLoadedMachine(p)
		m, ok := refMaxLoadedExcluding(p, stuck, p.Load(n))
		if !ok {
			if verified {
				break
			}
			clear(stuck)
			verified = true
			continue
		}
		c, found := refBestPairOpSwap(p, m, n, opts.Epsilon, !opts.DisableSwap)
		if !found {
			stuck[m] = true
			continue
		}
		if err := applyCandidate(p, c, &opts, &res); err != nil {
			return res, err
		}
		verified = false
		delete(stuck, c.op.From)
		delete(stuck, c.op.To)
	}
	res.FinalCost = refCost(p)
	return res, nil
}

// refRackMinTargets rebuilds the per-rack minimum list with linear scans
// and a full sort.
func refRackMinTargets(p *Placement, racks []topology.RackID) []minTarget {
	targets := make([]minTarget, 0, len(racks))
	for _, r := range racks {
		m, err := refMinLoadedMachineInRack(p, r)
		if err != nil {
			continue
		}
		targets = append(targets, minTarget{machine: m, load: p.Load(m)})
	}
	sort.Slice(targets, func(a, b int) bool { return targetLess(targets[a], targets[b]) })
	return targets
}

// refBestAmongTargets mirrors bestAmongTargets over the reference pair
// evaluation.
func refBestAmongTargets(p *Placement, m topology.MachineID, targets []minTarget, epsilon float64, allowSwap bool) (candidate, bool) {
	for _, t := range targets {
		if t.machine == m {
			continue
		}
		if c, ok := refBestPairOpSwap(p, m, t.machine, epsilon, allowSwap); ok {
			return c, true
		}
	}
	return candidate{}, false
}

// refBPRackSearch is BPRackSearch with the stuck map and rebuilt target
// lists of the pre-index implementation.
func refBPRackSearch(p *Placement, opts SearchOptions) (SearchResult, error) {
	res := SearchResult{InitialCost: refCost(p)}
	racks := p.Cluster().Racks()
	stuck := make(map[topology.MachineID]bool)
	verified := false
	for opts.MaxIterations == 0 || res.Iterations < opts.MaxIterations {
		targets := refRackMinTargets(p, racks)
		if len(targets) == 0 {
			break
		}
		globalMin := targets[0].load
		m, ok := refMaxLoadedExcluding(p, stuck, globalMin)
		if !ok {
			if verified {
				break
			}
			clear(stuck)
			verified = true
			continue
		}
		c, found := refBestAmongTargets(p, m, targets, opts.Epsilon, !opts.DisableSwap)
		if !found {
			stuck[m] = true
			continue
		}
		if err := applyCandidate(p, c, &opts, &res); err != nil {
			return res, err
		}
		verified = false
		delete(stuck, c.op.From)
		delete(stuck, c.op.To)
	}
	res.FinalCost = refCost(p)
	return res, nil
}

// refCost is the linear-scan Cost.
func refCost(p *Placement) float64 {
	max := 0.0
	for i := range p.machines {
		if p.machines[i].load > max {
			max = p.machines[i].load
		}
	}
	return max
}

func negInf() float64 { return math.Inf(-1) }

func posInf() float64 { return math.Inf(1) }
