package core

import (
	"aurora/internal/topology"
)

// BPNodeSearch implements Algorithm 1 of the paper: local search for the
// BP-Node problem (known replication factors, node-level fault tolerance
// only).
//
// Algorithm 1 as printed identifies the most-loaded machine m and the
// least-loaded machine n each iteration and performs an improving
// Move(m, i, n) or Swap(m, i, n, j). On large Zipf instances the single
// extreme pair frequently gets stuck — the top machine's load is one
// indivisible hot replica — while plenty of admissible operations remain
// between other pairs, so this implementation follows Algorithm 5's
// closure ("while ∃ an admissible Move or Swap, perform it"): sources are
// probed in descending load order against the least-loaded machine, and
// the search terminates only when *no* source yields an admissible
// operation. The terminal state therefore still satisfies Theorem 2's
// condition on the extreme pair — no improving operation between the
// most- and least-loaded machines — giving SOL <= OPT + p_max, a
// 2-approximation (Corollary 3); with epsilon-admissibility the factor
// degrades gracefully per Theorem 9 (see SearchOptions.Epsilon).
//
// The placement is modified in place. Rack-spread constraints of the
// blocks, if any, are still honoured by the underlying operations, so the
// function is safe to call on BP-Rack instances too.
func BPNodeSearch(p *Placement, opts SearchOptions) (SearchResult, error) {
	res := SearchResult{InitialCost: p.Cost()}
	// stuck marks sources that had no admissible operation when last
	// probed. The set is invalidated lazily: applied operations only
	// unstick the two machines they touched, and termination requires a
	// clean verification pass (full clear, then every source re-probed
	// without finding an operation) so the terminal condition — no
	// admissible operation anywhere — is exact.
	stuck := make(map[topology.MachineID]bool)
	verified := false
	for opts.MaxIterations == 0 || res.Iterations < opts.MaxIterations {
		n := p.MinLoadedMachine()
		m, ok := maxLoadedExcluding(p, stuck, p.Load(n))
		if !ok {
			if verified {
				break
			}
			clear(stuck)
			verified = true
			continue
		}
		c, found := bestPairOpSwap(p, m, n, opts.Epsilon, !opts.DisableSwap)
		if !found {
			stuck[m] = true
			continue
		}
		if err := applyCandidate(p, c, &opts, &res); err != nil {
			return res, err
		}
		verified = false
		delete(stuck, c.op.From)
		delete(stuck, c.op.To)
	}
	res.FinalCost = p.Cost()
	return res, nil
}

// maxLoadedExcluding returns the most-loaded machine not in the stuck set
// whose load exceeds minLoad, or ok=false when none remains.
func maxLoadedExcluding(p *Placement, stuck map[topology.MachineID]bool, minLoad float64) (topology.MachineID, bool) {
	best := topology.NoMachine
	bestLoad := minLoad
	for _, m := range p.Cluster().Machines() {
		if stuck[m] {
			continue
		}
		if l := p.Load(m); l > bestLoad {
			best, bestLoad = m, l
		}
	}
	return best, best != topology.NoMachine
}
