package core

import (
	"aurora/internal/topology"
)

// BPNodeSearch implements Algorithm 1 of the paper: local search for the
// BP-Node problem (known replication factors, node-level fault tolerance
// only).
//
// Algorithm 1 as printed identifies the most-loaded machine m and the
// least-loaded machine n each iteration and performs an improving
// Move(m, i, n) or Swap(m, i, n, j). On large Zipf instances the single
// extreme pair frequently gets stuck — the top machine's load is one
// indivisible hot replica — while plenty of admissible operations remain
// between other pairs, so this implementation follows Algorithm 5's
// closure ("while ∃ an admissible Move or Swap, perform it"): sources are
// probed in descending load order against the least-loaded machine, and
// the search terminates only when *no* source yields an admissible
// operation. The terminal state therefore still satisfies Theorem 2's
// condition on the extreme pair — no improving operation between the
// most- and least-loaded machines — giving SOL <= OPT + p_max, a
// 2-approximation (Corollary 3); with epsilon-admissibility the factor
// degrades gracefully per Theorem 9 (see SearchOptions.Epsilon).
//
// The placement is modified in place. Rack-spread constraints of the
// blocks, if any, are still honoured by the underlying operations, so the
// function is safe to call on BP-Rack instances too.
func BPNodeSearch(p *Placement, opts SearchOptions) (SearchResult, error) {
	res := SearchResult{InitialCost: p.Cost()}
	// Sources that had no admissible operation when last probed are
	// masked out of the load index, turning the "most-loaded unstuck
	// machine" query into one tree lookup. The set is invalidated lazily:
	// applied operations only unstick the two machines they touched, and
	// termination requires a clean verification pass (full unmask, then
	// every source re-probed without finding an operation) so the
	// terminal condition — no admissible operation anywhere — is exact.
	idx := p.loadIndex()
	idx.ClearMasks()
	defer idx.ClearMasks()
	verified := false
	for opts.MaxIterations == 0 || res.Iterations < opts.MaxIterations {
		n := p.MinLoadedMachine()
		mi, ok := idx.MaxUnmasked(p.Load(n))
		if !ok {
			if verified {
				break
			}
			idx.ClearMasks()
			verified = true
			continue
		}
		m := topology.MachineID(mi)
		c, found := bestPairOpSwap(p, m, n, opts.Epsilon, !opts.DisableSwap)
		if !found {
			idx.Mask(mi)
			continue
		}
		if err := applyCandidate(p, c, &opts, &res); err != nil {
			return res, err
		}
		verified = false
		idx.Unmask(int(c.op.From))
		idx.Unmask(int(c.op.To))
	}
	res.FinalCost = p.Cost()
	return res, nil
}
