package core

import (
	"errors"
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"aurora/internal/topology"
)

func mustCluster(t *testing.T, racks, perRack, capacity int) *topology.Cluster {
	t.Helper()
	c, err := topology.Uniform(racks, perRack, capacity, 2)
	if err != nil {
		t.Fatalf("Uniform: %v", err)
	}
	return c
}

func mustPlacement(t *testing.T, c *topology.Cluster, specs []BlockSpec) *Placement {
	t.Helper()
	p, err := NewPlacement(c, specs)
	if err != nil {
		t.Fatalf("NewPlacement: %v", err)
	}
	return p
}

func spec(id BlockID, pop float64, k, rho int) BlockSpec {
	return BlockSpec{ID: id, Popularity: pop, MinReplicas: k, MinRacks: rho}
}

func TestSpecValidate(t *testing.T) {
	tests := []struct {
		name string
		s    BlockSpec
		ok   bool
	}{
		{"valid", spec(1, 10, 3, 2), true},
		{"negative popularity", spec(1, -1, 3, 2), false},
		{"zero replicas", spec(1, 1, 0, 1), false},
		{"zero racks", spec(1, 1, 3, 0), false},
		{"racks exceed replicas", spec(1, 1, 2, 3), false},
		{"zero popularity ok", spec(1, 0, 1, 1), true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.s.Validate()
			if (err == nil) != tt.ok {
				t.Errorf("Validate() err = %v, want ok=%v", err, tt.ok)
			}
		})
	}
}

func TestAddBlockRejectsImpossibleRequirements(t *testing.T) {
	c := mustCluster(t, 2, 2, 10) // 2 racks, 4 machines
	p := mustPlacement(t, c, nil)
	if err := p.AddBlock(spec(1, 1, 3, 3)); !errors.Is(err, ErrBadSpec) {
		t.Errorf("3 racks on 2-rack cluster: err = %v, want ErrBadSpec", err)
	}
	if err := p.AddBlock(spec(2, 1, 5, 2)); !errors.Is(err, ErrBadSpec) {
		t.Errorf("5 replicas on 4-machine cluster: err = %v, want ErrBadSpec", err)
	}
	if err := p.AddBlock(spec(3, 1, 3, 2)); err != nil {
		t.Errorf("valid block rejected: %v", err)
	}
	if err := p.AddBlock(spec(3, 1, 3, 2)); !errors.Is(err, ErrDuplicateBlock) {
		t.Errorf("duplicate err = %v, want ErrDuplicateBlock", err)
	}
}

func TestAddReplicaDividesLoad(t *testing.T) {
	c := mustCluster(t, 2, 2, 10)
	p := mustPlacement(t, c, []BlockSpec{spec(1, 12, 3, 2)})
	if err := p.AddReplica(1, 0); err != nil {
		t.Fatalf("AddReplica: %v", err)
	}
	if got := p.Load(0); got != 12 {
		t.Errorf("Load(0) after 1 replica = %v, want 12", got)
	}
	if err := p.AddReplica(1, 1); err != nil {
		t.Fatalf("AddReplica: %v", err)
	}
	if got := p.Load(0); got != 6 {
		t.Errorf("Load(0) after 2 replicas = %v, want 6", got)
	}
	if err := p.AddReplica(1, 2); err != nil {
		t.Fatalf("AddReplica: %v", err)
	}
	for m := topology.MachineID(0); m < 3; m++ {
		if got := p.Load(m); math.Abs(got-4) > 1e-12 {
			t.Errorf("Load(%d) after 3 replicas = %v, want 4", m, got)
		}
	}
	if got := p.PerReplicaPopularity(1); math.Abs(got-4) > 1e-12 {
		t.Errorf("PerReplicaPopularity = %v, want 4", got)
	}
	if err := p.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestAddReplicaErrors(t *testing.T) {
	c := mustCluster(t, 1, 2, 1) // capacity 1 per machine
	p := mustPlacement(t, c, []BlockSpec{spec(1, 5, 1, 1), spec(2, 5, 1, 1)})
	if err := p.AddReplica(99, 0); !errors.Is(err, ErrUnknownBlock) {
		t.Errorf("unknown block err = %v", err)
	}
	if err := p.AddReplica(1, topology.MachineID(77)); !errors.Is(err, topology.ErrUnknownMachine) {
		t.Errorf("unknown machine err = %v", err)
	}
	if err := p.AddReplica(1, 0); err != nil {
		t.Fatalf("AddReplica: %v", err)
	}
	if err := p.AddReplica(1, 0); !errors.Is(err, ErrAlreadyPlaced) {
		t.Errorf("duplicate replica err = %v, want ErrAlreadyPlaced", err)
	}
	if err := p.AddReplica(2, 0); !errors.Is(err, ErrMachineFull) {
		t.Errorf("full machine err = %v, want ErrMachineFull", err)
	}
}

func TestRemoveReplicaRescalesLoad(t *testing.T) {
	c := mustCluster(t, 2, 2, 10)
	p := mustPlacement(t, c, []BlockSpec{spec(1, 12, 3, 2)})
	for _, m := range []topology.MachineID{0, 1, 2} {
		if err := p.AddReplica(1, m); err != nil {
			t.Fatalf("AddReplica: %v", err)
		}
	}
	if err := p.RemoveReplica(1, 1); err != nil {
		t.Fatalf("RemoveReplica: %v", err)
	}
	if got := p.Load(0); math.Abs(got-6) > 1e-12 {
		t.Errorf("Load(0) = %v, want 6", got)
	}
	if got := p.Load(1); math.Abs(got) > 1e-12 {
		t.Errorf("Load(1) = %v, want 0", got)
	}
	if err := p.RemoveReplica(1, 1); !errors.Is(err, ErrNotPlaced) {
		t.Errorf("double remove err = %v, want ErrNotPlaced", err)
	}
	if err := p.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestMoveReplicaPreservesCountAndLoadSum(t *testing.T) {
	c := mustCluster(t, 2, 2, 10)
	p := mustPlacement(t, c, []BlockSpec{spec(1, 9, 3, 2)})
	for _, m := range []topology.MachineID{0, 1, 2} {
		if err := p.AddReplica(1, m); err != nil {
			t.Fatalf("AddReplica: %v", err)
		}
	}
	before := p.TotalReplicas()
	if err := p.MoveReplica(1, 0, 3); err != nil {
		t.Fatalf("MoveReplica: %v", err)
	}
	if got := p.TotalReplicas(); got != before {
		t.Errorf("TotalReplicas = %d, want %d", got, before)
	}
	if p.HasReplica(1, 0) || !p.HasReplica(1, 3) {
		t.Error("replica did not move from 0 to 3")
	}
	if err := p.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestMoveReplicaRackConstraint(t *testing.T) {
	// 2 racks {0,1} and {2,3}. Block spans both racks with replicas on
	// 0 and 2; moving 2 -> 1 would collapse to one rack.
	c := mustCluster(t, 2, 2, 10)
	p := mustPlacement(t, c, []BlockSpec{spec(1, 4, 2, 2)})
	if err := p.AddReplica(1, 0); err != nil {
		t.Fatalf("AddReplica: %v", err)
	}
	if err := p.AddReplica(1, 2); err != nil {
		t.Fatalf("AddReplica: %v", err)
	}
	if err := p.MoveReplica(1, 2, 1); !errors.Is(err, ErrRackConstraint) {
		t.Errorf("rack-collapsing move err = %v, want ErrRackConstraint", err)
	}
	if p.CanMove(1, 2, 1) {
		t.Error("CanMove allowed a rack-collapsing move")
	}
	// Moving within the same rack is fine.
	if err := p.MoveReplica(1, 2, 3); err != nil {
		t.Errorf("same-rack move failed: %v", err)
	}
}

func TestMoveAllowedWhenAlreadyInfeasible(t *testing.T) {
	// If a block is under rack spread already (spread < MinRacks), moves
	// that don't fix it are still allowed: the placement must not
	// deadlock while the optimizer repairs it.
	c := mustCluster(t, 2, 2, 10)
	p := mustPlacement(t, c, []BlockSpec{spec(1, 4, 2, 2)})
	if err := p.AddReplica(1, 0); err != nil {
		t.Fatalf("AddReplica: %v", err)
	}
	if err := p.AddReplica(1, 1); err != nil { // both in rack 0: infeasible
		t.Fatalf("AddReplica: %v", err)
	}
	if p.Feasible(1) {
		t.Fatal("block unexpectedly feasible")
	}
	if err := p.MoveReplica(1, 1, 0+2); err != nil { // to rack 1, improves spread
		t.Errorf("repairing move failed: %v", err)
	}
	if !p.Feasible(1) {
		t.Error("block still infeasible after repair")
	}
}

func TestSwapReplicas(t *testing.T) {
	c := mustCluster(t, 1, 2, 1) // two machines, capacity 1 each: only swaps possible
	p := mustPlacement(t, c, []BlockSpec{spec(1, 10, 1, 1), spec(2, 2, 1, 1)})
	if err := p.AddReplica(1, 0); err != nil {
		t.Fatalf("AddReplica: %v", err)
	}
	if err := p.AddReplica(2, 1); err != nil {
		t.Fatalf("AddReplica: %v", err)
	}
	if !p.CanSwap(1, 0, 2, 1) {
		t.Fatal("CanSwap = false, want true")
	}
	if err := p.SwapReplicas(1, 0, 2, 1); err != nil {
		t.Fatalf("SwapReplicas: %v", err)
	}
	if !p.HasReplica(1, 1) || !p.HasReplica(2, 0) {
		t.Error("swap did not exchange replicas")
	}
	if got := p.Load(0); got != 2 {
		t.Errorf("Load(0) = %v, want 2", got)
	}
	if got := p.Load(1); got != 10 {
		t.Errorf("Load(1) = %v, want 10", got)
	}
	if err := p.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestSwapErrors(t *testing.T) {
	c := mustCluster(t, 1, 3, 10)
	p := mustPlacement(t, c, []BlockSpec{spec(1, 1, 1, 1), spec(2, 1, 1, 1)})
	if err := p.AddReplica(1, 0); err != nil {
		t.Fatalf("AddReplica: %v", err)
	}
	if err := p.AddReplica(2, 1); err != nil {
		t.Fatalf("AddReplica: %v", err)
	}
	if err := p.SwapReplicas(1, 0, 1, 1); err == nil {
		t.Error("self-swap accepted")
	}
	if err := p.SwapReplicas(1, 0, 2, 0); err == nil {
		t.Error("same-machine swap accepted")
	}
	if err := p.SwapReplicas(1, 2, 2, 1); !errors.Is(err, ErrNotPlaced) {
		t.Errorf("swap from non-holder err = %v, want ErrNotPlaced", err)
	}
	// i already on n
	if err := p.AddReplica(1, 1); err != nil {
		t.Fatalf("AddReplica: %v", err)
	}
	if err := p.SwapReplicas(1, 0, 2, 1); !errors.Is(err, ErrAlreadyPlaced) {
		t.Errorf("swap onto holder err = %v, want ErrAlreadyPlaced", err)
	}
	if p.CanSwap(1, 0, 2, 1) {
		t.Error("CanSwap allowed swap onto existing holder")
	}
}

func TestSetPopularityRescales(t *testing.T) {
	c := mustCluster(t, 1, 2, 10)
	p := mustPlacement(t, c, []BlockSpec{spec(1, 10, 1, 1)})
	if err := p.AddReplica(1, 0); err != nil {
		t.Fatalf("AddReplica: %v", err)
	}
	if err := p.AddReplica(1, 1); err != nil {
		t.Fatalf("AddReplica: %v", err)
	}
	if err := p.SetPopularity(1, 30); err != nil {
		t.Fatalf("SetPopularity: %v", err)
	}
	if got := p.Load(0); got != 15 {
		t.Errorf("Load(0) = %v, want 15", got)
	}
	if err := p.SetPopularity(1, -1); !errors.Is(err, ErrBadSpec) {
		t.Errorf("negative popularity err = %v, want ErrBadSpec", err)
	}
	if err := p.SetPopularity(99, 1); !errors.Is(err, ErrUnknownBlock) {
		t.Errorf("unknown block err = %v, want ErrUnknownBlock", err)
	}
	if err := p.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestDeleteBlock(t *testing.T) {
	c := mustCluster(t, 1, 2, 10)
	p := mustPlacement(t, c, []BlockSpec{spec(1, 10, 1, 1), spec(2, 4, 1, 1)})
	if err := p.AddReplica(1, 0); err != nil {
		t.Fatalf("AddReplica: %v", err)
	}
	if err := p.AddReplica(2, 0); err != nil {
		t.Fatalf("AddReplica: %v", err)
	}
	if err := p.DeleteBlock(1); err != nil {
		t.Fatalf("DeleteBlock: %v", err)
	}
	if got := p.Load(0); got != 4 {
		t.Errorf("Load(0) = %v, want 4", got)
	}
	if got := p.NumBlocks(); got != 1 {
		t.Errorf("NumBlocks = %d, want 1", got)
	}
	if err := p.DeleteBlock(1); !errors.Is(err, ErrUnknownBlock) {
		t.Errorf("double delete err = %v, want ErrUnknownBlock", err)
	}
	if err := p.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestCheckFeasible(t *testing.T) {
	c := mustCluster(t, 2, 2, 10)
	p := mustPlacement(t, c, []BlockSpec{spec(1, 4, 2, 2)})
	if err := p.CheckFeasible(); !errors.Is(err, ErrInfeasible) {
		t.Errorf("unplaced block feasible: %v", err)
	}
	if err := p.AddReplica(1, 0); err != nil {
		t.Fatalf("AddReplica: %v", err)
	}
	if err := p.AddReplica(1, 2); err != nil {
		t.Fatalf("AddReplica: %v", err)
	}
	if err := p.CheckFeasible(); err != nil {
		t.Errorf("CheckFeasible = %v, want nil", err)
	}
}

func TestCloneIsIndependent(t *testing.T) {
	c := mustCluster(t, 2, 2, 10)
	p := mustPlacement(t, c, []BlockSpec{spec(1, 8, 2, 2)})
	if err := p.AddReplica(1, 0); err != nil {
		t.Fatalf("AddReplica: %v", err)
	}
	if err := p.AddReplica(1, 2); err != nil {
		t.Fatalf("AddReplica: %v", err)
	}
	clone := p.Clone()
	if err := clone.MoveReplica(1, 0, 1); err != nil {
		t.Fatalf("MoveReplica on clone: %v", err)
	}
	if !p.HasReplica(1, 0) {
		t.Error("mutating clone affected original")
	}
	if err := p.Validate(); err != nil {
		t.Errorf("original Validate: %v", err)
	}
	if err := clone.Validate(); err != nil {
		t.Errorf("clone Validate: %v", err)
	}
}

func TestExtremeMachineSelectors(t *testing.T) {
	c := mustCluster(t, 2, 2, 10)
	p := mustPlacement(t, c, []BlockSpec{spec(1, 10, 1, 1), spec(2, 4, 1, 1)})
	if err := p.AddReplica(1, 1); err != nil {
		t.Fatalf("AddReplica: %v", err)
	}
	if err := p.AddReplica(2, 2); err != nil {
		t.Fatalf("AddReplica: %v", err)
	}
	if got := p.MaxLoadedMachine(); got != 1 {
		t.Errorf("MaxLoadedMachine = %d, want 1", got)
	}
	if got := p.MinLoadedMachine(); got != 0 {
		t.Errorf("MinLoadedMachine = %d, want 0 (ties break low)", got)
	}
	maxR0, err := p.MaxLoadedMachineInRack(0)
	if err != nil || maxR0 != 1 {
		t.Errorf("MaxLoadedMachineInRack(0) = %d, %v; want 1", maxR0, err)
	}
	minR1, err := p.MinLoadedMachineInRack(1)
	if err != nil || minR1 != 3 {
		t.Errorf("MinLoadedMachineInRack(1) = %d, %v; want 3", minR1, err)
	}
	if _, err := p.MaxLoadedMachineInRack(9); err == nil {
		t.Error("MaxLoadedMachineInRack(9) succeeded, want error")
	}
}

// Property test: any random sequence of add/remove/move/swap operations
// keeps the incremental bookkeeping consistent with a from-scratch
// recomputation, never exceeds capacity, and total load equals the sum of
// placed blocks' popularities.
func TestRandomOperationsKeepInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, seed^0x9e3779b9))
		cl, err := topology.Uniform(3, 3, 4, 1)
		if err != nil {
			return false
		}
		var specs []BlockSpec
		for i := 0; i < 8; i++ {
			specs = append(specs, BlockSpec{
				ID:          BlockID(i),
				Popularity:  float64(rng.IntN(20) + 1),
				MinReplicas: 1,
				MinRacks:    1,
			})
		}
		p, err := NewPlacement(cl, specs)
		if err != nil {
			return false
		}
		machines := cl.Machines()
		for step := 0; step < 200; step++ {
			id := BlockID(rng.IntN(8))
			m := machines[rng.IntN(len(machines))]
			n := machines[rng.IntN(len(machines))]
			switch rng.IntN(4) {
			case 0:
				_ = p.AddReplica(id, m) // errors fine (full/dup)
			case 1:
				_ = p.RemoveReplica(id, m)
			case 2:
				_ = p.MoveReplica(id, m, n)
			case 3:
				j := BlockID(rng.IntN(8))
				_ = p.SwapReplicas(id, m, j, n)
			}
		}
		if err := p.Validate(); err != nil {
			t.Logf("Validate: %v", err)
			return false
		}
		// Total machine load must equal the sum of placed popularities.
		var wantTotal float64
		for _, id := range p.Blocks() {
			if p.ReplicaCount(id) > 0 {
				s, err := p.Spec(id)
				if err != nil {
					return false
				}
				wantTotal += s.Popularity
			}
		}
		var gotTotal float64
		for _, l := range p.Loads() {
			gotTotal += l
		}
		return math.Abs(gotTotal-wantTotal) < 1e-6*(1+wantTotal)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
