package core_test

import (
	"math"
	"testing"

	"aurora/internal/core"
	"aurora/internal/invariant"
	"aurora/internal/topology"
)

// buildShardedFixture places `blocks` Zipf-popular blocks (3 replicas,
// 2 racks) deterministically over a 4x10 cluster, once directly and once
// through a ShardedPlacement with the given shard count. The round-robin
// machine assignment with rack-stride offsets satisfies spread without a
// rejection loop.
func buildShardedFixture(t *testing.T, shards, blocks int) (*core.Placement, *core.ShardedPlacement) {
	t.Helper()
	const machines, racks = 40, 4
	perRack := machines / racks
	capacity := 3*blocks/machines + 40
	cluster, err := topology.Uniform(racks, perRack, capacity, 8)
	if err != nil {
		t.Fatal(err)
	}
	specs := make([]core.BlockSpec, blocks)
	for i := range specs {
		specs[i] = core.BlockSpec{
			ID:          core.BlockID(i + 1),
			Popularity:  1000 / float64(i+1),
			MinReplicas: 3,
			MinRacks:    2,
		}
	}
	direct, err := core.NewPlacement(cluster, specs)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := core.NewShardedPlacement(cluster, shards, specs)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range specs {
		m1 := i % machines
		for _, m := range []int{m1, (m1 + perRack) % machines, (m1 + 2*perRack) % machines} {
			if err := direct.AddReplica(s.ID, topology.MachineID(m)); err != nil {
				t.Fatal(err)
			}
			if err := sharded.For(s.ID).AddReplica(s.ID, topology.MachineID(m)); err != nil {
				t.Fatal(err)
			}
		}
	}
	return direct, sharded
}

// TestOptimizeShardedSingleShardByteIdentical pins the tentpole's
// equivalence gate: with one shard, OptimizeSharded must reproduce
// Optimize on the same instance bit-for-bit — the same operation
// sequence through the observers and bit-identical machine loads.
func TestOptimizeShardedSingleShardByteIdentical(t *testing.T) {
	direct, sharded := buildShardedFixture(t, 1, 2000)

	var directOps, shardedOps []core.Op
	var directRepl, shardedRepl [][3]int64
	budget := direct.TotalReplicas() + 200

	dres, err := core.Optimize(direct, core.OptimizerOptions{
		Epsilon:             0.1,
		RackAware:           true,
		ReplicationBudget:   budget,
		MaxReplicationMoves: 200,
		MaxSearchIterations: 500,
		OnOp:                func(op core.Op) { directOps = append(directOps, op) },
		OnReplicate: func(id core.BlockID, from, to topology.MachineID) {
			directRepl = append(directRepl, [3]int64{int64(id), int64(from), int64(to)})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	sres, err := core.OptimizeSharded(sharded, core.ShardedOptimizerOptions{
		Opts: core.OptimizerOptions{
			Epsilon:             0.1,
			RackAware:           true,
			ReplicationBudget:   budget,
			MaxReplicationMoves: 200,
			MaxSearchIterations: 500,
			OnOp:                func(op core.Op) { shardedOps = append(shardedOps, op) },
			OnReplicate: func(id core.BlockID, from, to topology.MachineID) {
				shardedRepl = append(shardedRepl, [3]int64{int64(id), int64(from), int64(to)})
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	if len(directOps) != len(shardedOps) {
		t.Fatalf("op count differs: direct %d, sharded %d", len(directOps), len(shardedOps))
	}
	for i := range directOps {
		if directOps[i] != shardedOps[i] {
			t.Fatalf("op %d differs: direct %+v, sharded %+v", i, directOps[i], shardedOps[i])
		}
	}
	if len(directRepl) != len(shardedRepl) {
		t.Fatalf("replication count differs: direct %d, sharded %d", len(directRepl), len(shardedRepl))
	}
	for i := range directRepl {
		if directRepl[i] != shardedRepl[i] {
			t.Fatalf("replication %d differs", i)
		}
	}
	if dres.Replications != sres.Replications || dres.Evictions != sres.Evictions ||
		dres.Search != sres.Search {
		t.Fatalf("results differ: direct %+v, sharded %+v", dres, sres)
	}
	dLoads := direct.Loads()
	sLoads := sharded.Shard(0).Loads()
	for m := range dLoads {
		if math.Float64bits(dLoads[m]) != math.Float64bits(sLoads[m]) {
			t.Fatalf("machine %d load differs at the bit level: %v vs %v", m, dLoads[m], sLoads[m])
		}
	}
}

// TestOptimizeShardedProperty is the sharding correctness property test:
// after concurrent per-shard periods plus the cross-shard rebalance,
// every shard individually satisfies the paper invariants
// (invariant.CheckPlacement) and replicas are conserved globally — the
// merged view holds exactly the replicas the shards report, every block
// still meets its fault-tolerance spec, and no block leaked into a
// foreign shard.
func TestOptimizeShardedProperty(t *testing.T) {
	const shards = 4
	_, sp := buildShardedFixture(t, shards, 2000)
	before := sp.TotalReplicas()

	totalRepl, totalEvict := 0, 0
	var lastShares []int
	for period := 0; period < 3; period++ {
		res, err := core.OptimizeSharded(sp, core.ShardedOptimizerOptions{
			Workers: shards, // genuinely concurrent periods
			Opts: core.OptimizerOptions{
				Epsilon:             0.1,
				RackAware:           true,
				ReplicationBudget:   before + 200,
				MaxReplicationMoves: 100,
				MaxSearchIterations: 400,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		totalRepl += res.Replications
		totalEvict += res.Evictions
		if res.Imbalance < 1 {
			t.Fatalf("imbalance %v below 1 (max/mean)", res.Imbalance)
		}
		sum := 0
		for _, s := range res.Shares {
			sum += s
		}
		if res.Shares != nil && sum != 200 {
			t.Fatalf("period %d: budget shares sum to %d, want 200", period, sum)
		}
		lastShares = res.NextShares
	}
	if lastShares == nil {
		t.Fatal("rebalance produced no shares")
	}

	// Per-shard invariants plus shard-routing invariant.
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < sp.NumShards(); i++ {
		if err := invariant.CheckPlacement(sp.Shard(i)); err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
	}

	// Global replica conservation: the merged view carries exactly the
	// per-shard replica total, which accounts for the initial placement
	// plus replications minus evictions.
	merged, err := sp.Merge()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := merged.TotalReplicas(), sp.TotalReplicas(); got != want {
		t.Fatalf("merged replicas %d, shards hold %d", got, want)
	}
	if got, want := sp.TotalReplicas(), before+totalRepl-totalEvict; got != want {
		t.Fatalf("replica conservation broken: have %d, want %d (%d + %d - %d)",
			got, want, before, totalRepl, totalEvict)
	}
	if err := merged.CheckFeasible(); err != nil {
		t.Fatal(err)
	}
	if err := merged.Validate(); err != nil {
		t.Fatal(err)
	}

	// The aggregated load summary must equal the merged placement's
	// loads bit-for-bit only in sum; use a tolerance since addition
	// order differs.
	agg := sp.AppendLoads(nil)
	for m, l := range merged.Loads() {
		if diff := math.Abs(l - agg[m]); diff > 1e-6*(1+math.Abs(l)) {
			t.Fatalf("machine %d aggregated load %v, merged %v", m, agg[m], l)
		}
	}
}

// TestOptimizeShardedDeterministic pins that a concurrent sharded period
// is replayable: two runs from clones produce identical per-shard
// results and bit-identical loads regardless of worker interleaving.
func TestOptimizeShardedDeterministic(t *testing.T) {
	_, sp1 := buildShardedFixture(t, 4, 2000)
	sp2 := sp1.Clone()
	opts := core.ShardedOptimizerOptions{
		Workers: 4,
		Opts: core.OptimizerOptions{
			Epsilon:             0.1,
			RackAware:           true,
			ReplicationBudget:   sp1.TotalReplicas() + 200,
			MaxReplicationMoves: 100,
			MaxSearchIterations: 400,
		},
	}
	r1, err := core.OptimizeSharded(sp1, opts)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := core.OptimizeSharded(sp2, opts)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Search != r2.Search || r1.Replications != r2.Replications || r1.Evictions != r2.Evictions {
		t.Fatalf("sharded period not deterministic: %+v vs %+v", r1, r2)
	}
	for i := 0; i < sp1.NumShards(); i++ {
		l1, l2 := sp1.Shard(i).Loads(), sp2.Shard(i).Loads()
		for m := range l1 {
			if math.Float64bits(l1[m]) != math.Float64bits(l2[m]) {
				t.Fatalf("shard %d machine %d: %v vs %v", i, m, l1[m], l2[m])
			}
		}
	}
}
