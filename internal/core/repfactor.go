package core

import (
	"container/heap"
	"errors"
	"fmt"
)

// Errors returned by the Rep-Factor solver.
var (
	ErrBudgetTooSmall = errors.New("core: replication budget below sum of minimum replication factors")
	ErrBadBudget      = errors.New("core: invalid replication budget")
)

// RepFactorResult carries the outcome of Algorithm 3.
type RepFactorResult struct {
	// Factors maps every block to its computed replication factor k_i.
	Factors map[BlockID]int
	// Objective is ω = max_i P_i / k_i under the computed factors.
	Objective float64
	// Iterations is the number of loop iterations executed.
	Iterations int
	// BudgetUsed is Σ_i k_i.
	BudgetUsed int
}

// ComputeReplicationFactors implements Algorithm 3 of the paper: choose
// per-block replication factors k_i that minimize the maximum per-replica
// popularity ω = max_i P_i/k_i subject to k_i >= MinReplicas(i),
// k_i <= maxPerBlock (the |M| constraint of Rep-Factor) and Σ k_i <=
// budget (β).
//
// Each iteration selects the block with the highest per-replica
// popularity. If budget remains, its factor is incremented; otherwise the
// algorithm looks for a donor block l whose factor can drop by one
// without raising the objective (P_l/(k_l-1) < P_i/k_i) and trades a
// replica from l to i. It terminates when the maximum per-replica
// popularity can no longer be reduced. Theorem 8 shows this solves
// Rep-Factor optimally; we require the donor inequality to be strict so
// that the objective strictly decreases every trade, which also
// guarantees termination (with the paper's non-strict "<=", two blocks of
// equal popularity could trade a replica back and forth forever).
//
// maxIterations > 0 bounds the loop (the K knob of Algorithm 5 /
// Section V); 0 means run to optimality.
func ComputeReplicationFactors(specs []BlockSpec, budget, maxPerBlock, maxIterations int) (RepFactorResult, error) {
	if budget <= 0 {
		return RepFactorResult{}, fmt.Errorf("%w: %d", ErrBadBudget, budget)
	}
	if maxPerBlock <= 0 {
		return RepFactorResult{}, fmt.Errorf("%w: maxPerBlock %d", ErrBadBudget, maxPerBlock)
	}
	factors := make(map[BlockID]int, len(specs))
	pop := make(map[BlockID]float64, len(specs))
	low := make(map[BlockID]int, len(specs))
	used := 0
	for _, s := range specs {
		if err := s.Validate(); err != nil {
			return RepFactorResult{}, err
		}
		if _, dup := factors[s.ID]; dup {
			return RepFactorResult{}, fmt.Errorf("%w: block %d", ErrDuplicateBlock, s.ID)
		}
		k := s.MinReplicas
		if k > maxPerBlock {
			return RepFactorResult{}, fmt.Errorf("%w: block %d needs %d replicas, max is %d",
				ErrBadBudget, s.ID, k, maxPerBlock)
		}
		factors[s.ID] = k
		pop[s.ID] = s.Popularity
		low[s.ID] = s.MinReplicas
		used += k
	}
	if used > budget {
		return RepFactorResult{}, fmt.Errorf("%w: need %d, budget %d", ErrBudgetTooSmall, used, budget)
	}

	// Lazy heaps: entries are revalidated against the current factor on
	// pop. inc orders blocks by P/k descending (who most deserves a new
	// replica); dec orders blocks by P/(k-1) ascending (cheapest donor).
	inc := &repHeap{max: true}
	dec := &repHeap{max: false}
	for id, k := range factors {
		heap.Push(inc, repEntry{id: id, k: k, key: perReplica(pop[id], k)})
		if k > low[id] {
			heap.Push(dec, repEntry{id: id, k: k, key: perReplica(pop[id], k-1)})
		}
	}

	res := RepFactorResult{}
	for maxIterations == 0 || res.Iterations < maxIterations {
		top, ok := popValid(inc, factors)
		if !ok {
			break
		}
		i := top.id
		topKey := perReplica(pop[i], factors[i])
		if factors[i] >= maxPerBlock {
			// This block cannot take another replica. The objective is
			// now pinned by it, but remaining budget still levels the
			// rest of the distribution (Lemma 7 saturates the budget),
			// which matters for locality: skip it and keep going.
			continue
		}
		if used < budget {
			res.Iterations++
			used++
			factors[i]++
			pushBlock(inc, dec, i, factors[i], pop[i], low[i])
			continue
		}
		donor, ok := findDonor(dec, factors, pop, low, i, topKey)
		if !ok {
			heap.Push(inc, repEntry{id: i, k: factors[i], key: topKey})
			break
		}
		res.Iterations++
		factors[donor]--
		factors[i]++
		pushBlock(inc, dec, donor, factors[donor], pop[donor], low[donor])
		pushBlock(inc, dec, i, factors[i], pop[i], low[i])
	}

	res.Factors = factors
	res.BudgetUsed = used
	for id, k := range factors {
		if v := perReplica(pop[id], k); v > res.Objective {
			res.Objective = v
		}
	}
	return res, nil
}

func perReplica(p float64, k int) float64 {
	if k <= 0 {
		return p
	}
	return p / float64(k)
}

// pushBlock refreshes a block's heap entries after its factor changed.
func pushBlock(inc, dec *repHeap, id BlockID, k int, pop float64, low int) {
	heap.Push(inc, repEntry{id: id, k: k, key: perReplica(pop, k)})
	if k > low {
		heap.Push(dec, repEntry{id: id, k: k, key: perReplica(pop, k-1)})
	}
}

// popValid pops entries until one matches the block's current factor.
func popValid(h *repHeap, factors map[BlockID]int) (repEntry, bool) {
	for h.Len() > 0 {
		e := heap.Pop(h).(repEntry)
		if factors[e.id] == e.k {
			return e, true
		}
	}
	return repEntry{}, false
}

// findDonor pops the cheapest valid donor l != i with k_l > k_low and
// P_l/(k_l-1) strictly below the current objective. Entries popped but
// not used are pushed back.
func findDonor(dec *repHeap, factors map[BlockID]int, pop map[BlockID]float64, low map[BlockID]int, exclude BlockID, objective float64) (BlockID, bool) {
	var skipped []repEntry
	defer func() {
		for _, e := range skipped {
			heap.Push(dec, e)
		}
	}()
	for dec.Len() > 0 {
		e := heap.Pop(dec).(repEntry)
		if factors[e.id] != e.k || factors[e.id] <= low[e.id] {
			continue // stale
		}
		if e.id == exclude {
			skipped = append(skipped, e)
			continue
		}
		if e.key >= objective {
			skipped = append(skipped, e)
			return 0, false // min-heap: no cheaper donor exists
		}
		return e.id, true
	}
	return 0, false
}

// repEntry is a lazily-invalidated heap entry.
type repEntry struct {
	id  BlockID
	k   int     // factor at push time; stale when != current
	key float64 // ordering key at push time
}

// repHeap is a binary heap of repEntry, max- or min-ordered by key with
// deterministic ID tie-breaks.
type repHeap struct {
	entries []repEntry
	max     bool
}

func (h *repHeap) Len() int { return len(h.entries) }

func (h *repHeap) Less(a, b int) bool {
	ea, eb := h.entries[a], h.entries[b]
	if !floatEq(ea.key, eb.key) {
		if h.max {
			return ea.key > eb.key
		}
		return ea.key < eb.key
	}
	return ea.id < eb.id
}

func (h *repHeap) Swap(a, b int) { h.entries[a], h.entries[b] = h.entries[b], h.entries[a] }

func (h *repHeap) Push(x any) { h.entries = append(h.entries, x.(repEntry)) }

func (h *repHeap) Pop() any {
	old := h.entries
	n := len(old)
	e := old[n-1]
	h.entries = old[:n-1]
	return e
}
