package core

import (
	"errors"
	"testing"

	"aurora/internal/topology"
)

func TestInitialPlaceWriterLocal(t *testing.T) {
	cl := mustCluster(t, 2, 2, 10)
	p := mustPlacement(t, cl, []BlockSpec{spec(1, 6, 3, 2)})
	writer := topology.MachineID(3)
	if err := InitialPlace(p, 1, 3, writer); err != nil {
		t.Fatalf("InitialPlace: %v", err)
	}
	if !p.HasReplica(1, writer) {
		t.Errorf("first replica not on writer machine %d; replicas = %v", writer, p.Replicas(1))
	}
	if got := p.ReplicaCount(1); got != 3 {
		t.Errorf("ReplicaCount = %d, want 3", got)
	}
	if got := p.RackSpread(1); got < 2 {
		t.Errorf("RackSpread = %d, want >= 2", got)
	}
	if err := p.CheckFeasible(); err != nil {
		t.Errorf("CheckFeasible: %v", err)
	}
}

func TestInitialPlaceNoWriterPicksLeastLoaded(t *testing.T) {
	cl := mustCluster(t, 2, 2, 10)
	p := mustPlacement(t, cl, []BlockSpec{spec(1, 100, 1, 1), spec(2, 6, 1, 1)})
	// Pre-load machine 0 (rack 0) so rack 1 is the least loaded.
	if err := p.AddReplica(1, 0); err != nil {
		t.Fatalf("AddReplica: %v", err)
	}
	if err := InitialPlace(p, 2, 1, topology.NoMachine); err != nil {
		t.Fatalf("InitialPlace: %v", err)
	}
	reps := p.Replicas(2)
	if len(reps) != 1 {
		t.Fatalf("replicas = %v, want 1", reps)
	}
	rack, err := cl.RackOf(reps[0])
	if err != nil {
		t.Fatalf("RackOf: %v", err)
	}
	if rack != 1 {
		t.Errorf("block placed in rack %d, want least-loaded rack 1", rack)
	}
}

func TestInitialPlaceSpansRacks(t *testing.T) {
	cl := mustCluster(t, 4, 2, 10)
	p := mustPlacement(t, cl, []BlockSpec{spec(1, 8, 4, 3)})
	if err := InitialPlace(p, 1, 4, topology.NoMachine); err != nil {
		t.Fatalf("InitialPlace: %v", err)
	}
	if got := p.RackSpread(1); got < 3 {
		t.Errorf("RackSpread = %d, want >= 3", got)
	}
	if got := p.ReplicaCount(1); got != 4 {
		t.Errorf("ReplicaCount = %d, want 4", got)
	}
}

func TestInitialPlaceFillsWithinChosenRacks(t *testing.T) {
	// rho=2, k=4 on a 3-rack cluster: after spreading over 2 racks, the
	// remaining 2 replicas should stay inside those racks (paper's
	// Algorithm 4), not leak into the third.
	cl := mustCluster(t, 3, 3, 10)
	p := mustPlacement(t, cl, []BlockSpec{spec(1, 8, 4, 2)})
	if err := InitialPlace(p, 1, 4, topology.NoMachine); err != nil {
		t.Fatalf("InitialPlace: %v", err)
	}
	racksUsed := make(map[topology.RackID]bool)
	for _, m := range p.Replicas(1) {
		r, err := cl.RackOf(m)
		if err != nil {
			t.Fatalf("RackOf: %v", err)
		}
		racksUsed[r] = true
	}
	if len(racksUsed) != 2 {
		t.Errorf("replicas span %d racks, want exactly 2 (fill within chosen racks)", len(racksUsed))
	}
}

func TestInitialPlaceRespectsCapacity(t *testing.T) {
	cl := mustCluster(t, 1, 2, 1)
	p := mustPlacement(t, cl, []BlockSpec{spec(1, 5, 2, 1), spec(2, 5, 1, 1)})
	if err := InitialPlace(p, 1, 2, topology.NoMachine); err != nil {
		t.Fatalf("InitialPlace block 1: %v", err)
	}
	// Cluster is now full; the next placement must fail with ErrMachineFull.
	if err := InitialPlace(p, 2, 1, topology.NoMachine); !errors.Is(err, ErrMachineFull) {
		t.Errorf("InitialPlace on full cluster err = %v, want ErrMachineFull", err)
	}
}

func TestInitialPlaceClampsKToClusterSize(t *testing.T) {
	cl := mustCluster(t, 1, 3, 10)
	p := mustPlacement(t, cl, []BlockSpec{spec(1, 5, 1, 1)})
	if err := InitialPlace(p, 1, 50, topology.NoMachine); err != nil {
		t.Fatalf("InitialPlace: %v", err)
	}
	if got := p.ReplicaCount(1); got != 3 {
		t.Errorf("ReplicaCount = %d, want 3 (clamped to machines)", got)
	}
}

func TestInitialPlaceRaisesKToMinReplicas(t *testing.T) {
	cl := mustCluster(t, 2, 2, 10)
	p := mustPlacement(t, cl, []BlockSpec{spec(1, 5, 3, 2)})
	if err := InitialPlace(p, 1, 1, topology.NoMachine); err != nil {
		t.Fatalf("InitialPlace: %v", err)
	}
	if got := p.ReplicaCount(1); got != 3 {
		t.Errorf("ReplicaCount = %d, want 3 (raised to MinReplicas)", got)
	}
}

func TestInitialPlaceIdempotentWhenSatisfied(t *testing.T) {
	cl := mustCluster(t, 2, 2, 10)
	p := mustPlacement(t, cl, []BlockSpec{spec(1, 5, 2, 2)})
	if err := InitialPlace(p, 1, 2, topology.NoMachine); err != nil {
		t.Fatalf("InitialPlace: %v", err)
	}
	before := p.Replicas(1)
	if err := InitialPlace(p, 1, 2, topology.NoMachine); err != nil {
		t.Fatalf("second InitialPlace: %v", err)
	}
	after := p.Replicas(1)
	if len(before) != len(after) {
		t.Errorf("replica set changed on re-placement: %v -> %v", before, after)
	}
}

func TestInitialPlaceUnknownBlock(t *testing.T) {
	cl := mustCluster(t, 1, 1, 10)
	p := mustPlacement(t, cl, nil)
	if err := InitialPlace(p, 42, 1, topology.NoMachine); !errors.Is(err, ErrUnknownBlock) {
		t.Errorf("err = %v, want ErrUnknownBlock", err)
	}
}

func TestInitialPlaceBalancesAcrossBlocks(t *testing.T) {
	// Placing many equal blocks one after another must spread load: no
	// machine should end with more than ceil(total replicas / machines)
	// + small slack replicas.
	cl := mustCluster(t, 3, 3, 100)
	var specs []BlockSpec
	for i := 0; i < 30; i++ {
		specs = append(specs, spec(BlockID(i+1), 10, 3, 2))
	}
	p := mustPlacement(t, cl, specs)
	for _, s := range specs {
		if err := InitialPlace(p, s.ID, 3, topology.NoMachine); err != nil {
			t.Fatalf("InitialPlace %d: %v", s.ID, err)
		}
	}
	totalReplicas := 30 * 3
	perMachine := totalReplicas / cl.NumMachines() // 10
	for _, m := range cl.Machines() {
		if got := p.Used(m); got > perMachine+2 {
			t.Errorf("machine %d has %d replicas, want <= %d", m, got, perMachine+2)
		}
	}
	if err := p.CheckFeasible(); err != nil {
		t.Errorf("CheckFeasible: %v", err)
	}
	if err := p.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}
