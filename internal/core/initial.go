package core

import (
	"fmt"
	"sort"

	"aurora/internal/topology"
)

// InitialPlace implements Algorithm 4 of the paper: greedy initial
// placement of a new block.
//
// Given a block with node-level factor k (k >= the block's MinRacks ρ)
// and an optional writer machine:
//
//   - the first replica goes to the writer machine if the block was
//     written by a task (pass writer != topology.NoMachine), otherwise to
//     the least-loaded machine in the least-loaded rack;
//   - the next ρ-1 replicas go to the least-loaded machines of the next
//     ρ-1 least-loaded racks (one per rack), establishing the rack
//     spread;
//   - the remaining k-ρ replicas go to the least-loaded machines among
//     the ρ racks already chosen, in ascending load order.
//
// Machines that are full or already hold the block are skipped. If the
// chosen racks run out of capacity, placement falls back to the
// least-loaded machines anywhere in the cluster (a robustness deviation
// from the paper, which assumes capacity is available); if the whole
// cluster is full, ErrMachineFull is returned with the block partially
// placed.
func InitialPlace(p *Placement, id BlockID, k int, writer topology.MachineID) error {
	spec, err := p.Spec(id)
	if err != nil {
		return err
	}
	rho := spec.MinRacks
	if k < spec.MinReplicas {
		k = spec.MinReplicas
	}
	if k > p.Cluster().NumMachines() {
		k = p.Cluster().NumMachines()
	}
	placed := p.ReplicaCount(id)
	if placed >= k {
		return nil
	}

	// First replica.
	if placed == 0 {
		m := writer
		if m == topology.NoMachine || !canHost(p, id, m) {
			m = leastLoadedHost(p, id, racksByLoad(p), nil)
		}
		if m == topology.NoMachine {
			return fmt.Errorf("%w: no machine can host block %d", ErrMachineFull, id)
		}
		if err := p.AddReplica(id, m); err != nil {
			return fmt.Errorf("core: initial placement of block %d: %w", id, err)
		}
		placed = 1
	}

	// Establish rack spread: one replica in each of the next
	// least-loaded racks until ρ racks hold the block.
	for p.RackSpread(id) < rho && placed < k {
		m := leastLoadedHost(p, id, racksByLoad(p), func(r topology.RackID) bool {
			return blockInRack(p, id, r) // skip racks already holding it
		})
		if m == topology.NoMachine {
			break // cannot widen spread; fall through to fill remaining
		}
		if err := p.AddReplica(id, m); err != nil {
			return fmt.Errorf("core: rack-spread placement of block %d: %w", id, err)
		}
		placed++
	}

	// Fill the remaining replicas inside the chosen racks, least-loaded
	// machines first.
	for placed < k {
		m := leastLoadedHost(p, id, racksByLoad(p), func(r topology.RackID) bool {
			return !blockInRack(p, id, r) // only racks already holding it
		})
		if m == topology.NoMachine {
			// Chosen racks exhausted: fall back to anywhere.
			m = leastLoadedHost(p, id, racksByLoad(p), nil)
		}
		if m == topology.NoMachine {
			return fmt.Errorf("%w: cluster cannot host %d replicas of block %d", ErrMachineFull, k, id)
		}
		if err := p.AddReplica(id, m); err != nil {
			return fmt.Errorf("core: fill placement of block %d: %w", id, err)
		}
		placed++
	}
	return nil
}

// canHost reports whether machine m can accept a new replica of block id.
func canHost(p *Placement, id BlockID, m topology.MachineID) bool {
	if p.HasReplica(id, m) {
		return false
	}
	return p.FreeCapacity(m) > 0
}

// blockInRack reports whether any machine in rack r holds block id.
func blockInRack(p *Placement, id BlockID, r topology.RackID) bool {
	for _, m := range p.Replicas(id) {
		if rack, err := p.Cluster().RackOf(m); err == nil && rack == r {
			return true
		}
	}
	return false
}

// racksByLoad returns rack IDs ordered by ascending total load, breaking
// ties by stored replica count and then ID. The usage tie-break matters
// when popularity is uniformly zero (a freshly written dataset): without
// it every block would pile into the first rack.
func racksByLoad(p *Placement) []topology.RackID {
	racks := p.Cluster().Racks()
	// p.rackUsed is maintained incrementally and equals the per-rack sum of
	// Used(m) the previous implementation recomputed here in O(M).
	sort.Slice(racks, func(a, b int) bool {
		la, lb := p.RackLoadOf(racks[a]), p.RackLoadOf(racks[b])
		if !floatEq(la, lb) {
			return la < lb
		}
		if p.rackUsed[racks[a]] != p.rackUsed[racks[b]] {
			return p.rackUsed[racks[a]] < p.rackUsed[racks[b]]
		}
		return racks[a] < racks[b]
	})
	return racks
}

// leastLoadedHost scans racks in the given order (skipping racks where
// skipRack returns true) and returns the least-loaded machine that can
// host block id, or NoMachine. Ties break by stored replica count, then
// machine ID, so zero-popularity placement degrades to disk balancing.
func leastLoadedHost(p *Placement, id BlockID, racks []topology.RackID, skipRack func(topology.RackID) bool) topology.MachineID {
	for _, r := range racks {
		if skipRack != nil && skipRack(r) {
			continue
		}
		ms, err := p.Cluster().MachinesInRack(r)
		if err != nil {
			continue
		}
		best := topology.NoMachine
		bestLoad := 0.0
		for _, m := range ms {
			if !canHost(p, id, m) {
				continue
			}
			load := p.Load(m)
			if best == topology.NoMachine || load < bestLoad ||
				(floatEq(load, bestLoad) && p.Used(m) < p.Used(best)) {
				best, bestLoad = m, load
			}
		}
		if best != topology.NoMachine {
			return best
		}
	}
	return topology.NoMachine
}
