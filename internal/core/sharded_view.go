package core

import (
	"slices"

	"aurora/internal/topology"
)

// This file is the routed view of a ShardedPlacement: the per-block
// Placement API forwarded through For(id), plus the per-machine and
// whole-namespace aggregates the namenode's metadata paths need. Every
// wrapper is a thin fan-out — no per-block state is duplicated outside
// the owning shard — and with one shard each call is exactly the
// underlying Placement call, preserving the unsharded behaviour
// bit-for-bit.

// Spec returns block id's registered spec from its shard.
func (sp *ShardedPlacement) Spec(id BlockID) (BlockSpec, error) { return sp.For(id).Spec(id) }

// Replicas lists the machines holding block id.
func (sp *ShardedPlacement) Replicas(id BlockID) []topology.MachineID {
	return sp.For(id).Replicas(id)
}

// ReplicaCount returns k_i for block id (zero for unknown blocks).
func (sp *ShardedPlacement) ReplicaCount(id BlockID) int { return sp.For(id).ReplicaCount(id) }

// HasReplica reports whether block id has a replica on machine m.
func (sp *ShardedPlacement) HasReplica(id BlockID, m topology.MachineID) bool {
	return sp.For(id).HasReplica(id, m)
}

// RackSpread reports how many distinct racks hold block id.
func (sp *ShardedPlacement) RackSpread(id BlockID) int { return sp.For(id).RackSpread(id) }

// AddReplica adds a replica of block id on machine m in its shard.
func (sp *ShardedPlacement) AddReplica(id BlockID, m topology.MachineID) error {
	return sp.For(id).AddReplica(id, m)
}

// RemoveReplica removes block id's replica from machine m in its shard.
func (sp *ShardedPlacement) RemoveReplica(id BlockID, m topology.MachineID) error {
	return sp.For(id).RemoveReplica(id, m)
}

// SetPopularity updates block id's popularity in its shard.
func (sp *ShardedPlacement) SetPopularity(id BlockID, pop float64) error {
	return sp.For(id).SetPopularity(id, pop)
}

// Blocks lists every registered block across all shards in ascending ID
// order — the same order the unsharded Placement reports.
func (sp *ShardedPlacement) Blocks() []BlockID {
	if len(sp.shards) == 1 {
		return sp.shards[0].Blocks()
	}
	buf := make([]BlockID, 0, sp.NumBlocks())
	for _, p := range sp.shards {
		buf = p.AppendBlocks(buf)
	}
	slices.Sort(buf)
	return buf
}

// BlocksOn lists the blocks stored on machine m across all shards in
// ascending ID order.
func (sp *ShardedPlacement) BlocksOn(m topology.MachineID) []BlockID {
	if len(sp.shards) == 1 {
		return sp.shards[0].BlocksOn(m)
	}
	var buf []BlockID
	for _, p := range sp.shards {
		buf = p.AppendBlocksOn(m, buf)
	}
	slices.Sort(buf)
	return buf
}

// Load reports machine m's load aggregated across shards (the global
// per-machine load the paper's objective is defined over).
func (sp *ShardedPlacement) Load(m topology.MachineID) float64 {
	if len(sp.shards) == 1 {
		return sp.shards[0].Load(m)
	}
	l := 0.0
	for _, p := range sp.shards {
		l += p.Load(m)
	}
	return l
}

// FreeCapacity reports machine m's residual physical capacity: its base
// capacity minus replicas stored across all shards. Individual shards
// additionally enforce their own quota (see shardQuota); use CanHost to
// check both at once.
func (sp *ShardedPlacement) FreeCapacity(m topology.MachineID) int {
	if len(sp.shards) == 1 {
		return sp.shards[0].FreeCapacity(m)
	}
	return sp.base.MustMachine(m).Capacity - sp.Used(m)
}

// CanHost reports whether machine m can accept a new replica of block
// id: the machine has physical capacity left and block id's shard has
// quota headroom on it. With one shard both conditions are the same
// plain capacity check.
func (sp *ShardedPlacement) CanHost(id BlockID, m topology.MachineID) bool {
	return sp.For(id).FreeCapacity(m) > 0 && sp.FreeCapacity(m) > 0
}

// CheckFeasible verifies the paper's feasibility constraints shard by
// shard.
func (sp *ShardedPlacement) CheckFeasible() error {
	for _, p := range sp.shards {
		if err := p.CheckFeasible(); err != nil {
			return err
		}
	}
	return nil
}
