// Package core implements the paper's primary contribution: the block
// placement problems (BP-Node, BP-Rack, BP-Replicate) and the local-search
// approximation algorithms that solve them (Algorithms 1-5 of the Aurora
// paper, ICDCS'15), together with the epsilon-admissibility mechanism that
// trades solution optimality for reconfiguration cost (Section IV).
//
// The load model follows Section III: each block i has a total popularity
// P_i over the optimization period, is replicated k_i times, and each
// replica carries per-replica popularity p_i = P_i / k_i — the demand for
// a block divides evenly among its replicas. A machine's load is the sum
// of the per-replica popularities of the replicas it stores; the
// optimization objective is to minimize the maximum machine load λ.
package core

// The placement algorithms must be replayable from a seed (experiments
// compare runs) and robust to float rounding drift in incrementally
// maintained loads. aurora-lint enforces both package-wide; see
// DESIGN.md "Correctness tooling".
//
//lint:deterministic
//lint:strictfloat

import (
	"errors"
	"fmt"
)

// BlockID identifies a block. IDs are opaque; the trace generator and the
// DFS assign them densely but nothing in this package requires that.
type BlockID int64

// BlockSpec describes one block's demand and fault-tolerance
// requirements.
type BlockSpec struct {
	ID BlockID
	// Popularity is the total demand P_i for the block over the
	// optimization period (e.g. accesses within the sliding window W).
	Popularity float64
	// MinReplicas is k_low: the node-level fault-tolerance requirement.
	// The placement may hold more replicas than this (dynamic
	// replication) but never fewer once fully placed.
	MinReplicas int
	// MinRacks is ρ_i: the number of distinct racks the block's replicas
	// must span. MinRacks <= MinReplicas.
	MinRacks int
}

// Errors shared across the package.
var (
	ErrUnknownBlock   = errors.New("core: unknown block")
	ErrDuplicateBlock = errors.New("core: duplicate block")
	ErrBadSpec        = errors.New("core: invalid block spec")
	ErrAlreadyPlaced  = errors.New("core: machine already holds a replica of the block")
	ErrNotPlaced      = errors.New("core: machine does not hold a replica of the block")
	ErrMachineFull    = errors.New("core: machine at capacity")
	ErrRackConstraint = errors.New("core: operation would violate rack spread requirement")
	ErrInfeasible     = errors.New("core: placement violates fault-tolerance requirements")
)

// Validate checks a spec for internal consistency.
func (s BlockSpec) Validate() error {
	if s.Popularity < 0 {
		return fmt.Errorf("%w: block %d has negative popularity %v", ErrBadSpec, s.ID, s.Popularity)
	}
	if s.MinReplicas < 1 {
		return fmt.Errorf("%w: block %d has MinReplicas %d < 1", ErrBadSpec, s.ID, s.MinReplicas)
	}
	if s.MinRacks < 1 {
		return fmt.Errorf("%w: block %d has MinRacks %d < 1", ErrBadSpec, s.ID, s.MinRacks)
	}
	if s.MinRacks > s.MinReplicas {
		return fmt.Errorf("%w: block %d has MinRacks %d > MinReplicas %d",
			ErrBadSpec, s.ID, s.MinRacks, s.MinReplicas)
	}
	return nil
}
