package core

import (
	"fmt"
	"sort"

	"aurora/internal/topology"
)

// OptimizerOptions configure one run of Algorithm 5 (the periodic
// placement optimizer of Section V).
type OptimizerOptions struct {
	// Epsilon is the admissibility threshold for the local-search phase
	// (Section IV).
	Epsilon float64
	// ReplicationBudget is β: the maximum total number of replicas
	// (Σ k_i) across all blocks. Zero disables dynamic replication
	// (BP-Node/BP-Rack mode: factors stay at their minimums).
	ReplicationBudget int
	// MaxReplicationMoves is K: the bound on both Algorithm 3 iterations
	// and the number of replica copies performed per period. Zero means
	// unbounded.
	MaxReplicationMoves int
	// MaxPerBlock caps k_i; zero defaults to the number of machines.
	MaxPerBlock int
	// RackAware selects Algorithm 2 (true) or Algorithm 1 (false) for
	// the local-search phase.
	RackAware bool
	// MaxSearchIterations bounds the local-search phase; zero means run
	// to quiescence.
	MaxSearchIterations int
	// OnReplicate, if non-nil, observes every replica copy (block,
	// source machine, destination machine). Source is NoMachine when the
	// block had no replicas.
	OnReplicate func(BlockID, topology.MachineID, topology.MachineID)
	// OnEvict, if non-nil, observes every lazy deletion performed to
	// reclaim capacity.
	OnEvict func(BlockID, topology.MachineID)
	// OnOp, if non-nil, observes every local-search operation.
	OnOp func(Op)
}

// OptimizeResult summarizes one optimizer period.
type OptimizeResult struct {
	// Targets are the replication factors chosen by Algorithm 3 (nil
	// when dynamic replication is disabled).
	Targets map[BlockID]int
	// RepFactor reports the Algorithm 3 run (zero value when disabled).
	RepFactor RepFactorResult
	// Replications is the number of replica copies performed.
	Replications int
	// Evictions is the number of lazy deletions performed for capacity.
	Evictions int
	// Search reports the local-search phase.
	Search SearchResult
}

// Optimize runs one period of Algorithm 5 against the placement:
//
//  1. If a replication budget is set, compute target factors with
//     Algorithm 3 and copy replicas of under-replicated blocks (hottest
//     first) onto least-loaded machines, up to K copies. Deletion of
//     over-replicated blocks is lazy: surplus replicas are only evicted
//     when a machine's capacity is needed.
//  2. Run the admissible local search (Algorithm 2, or Algorithm 1 when
//     RackAware is false) until no admissible operation remains.
//
// The placement is modified in place.
func Optimize(p *Placement, opts OptimizerOptions) (OptimizeResult, error) {
	var res OptimizeResult
	if opts.ReplicationBudget > 0 {
		if err := replicatePhase(p, &opts, &res); err != nil {
			return res, err
		}
	}
	searchOpts := SearchOptions{
		Epsilon:       opts.Epsilon,
		MaxIterations: opts.MaxSearchIterations,
		OnOp:          opts.OnOp,
	}
	var err error
	if opts.RackAware {
		res.Search, err = BPRackSearch(p, searchOpts)
	} else {
		res.Search, err = BPNodeSearch(p, searchOpts)
	}
	return res, err
}

// replicatePhase runs Algorithm 3 and applies the resulting targets with
// at most K replica copies.
func replicatePhase(p *Placement, opts *OptimizerOptions, res *OptimizeResult) error {
	maxPerBlock := opts.MaxPerBlock
	if maxPerBlock <= 0 {
		maxPerBlock = p.Cluster().NumMachines()
	}
	specs := make([]BlockSpec, 0, p.NumBlocks())
	for _, id := range p.Blocks() {
		s, err := p.Spec(id)
		if err != nil {
			return err
		}
		specs = append(specs, s)
	}
	rf, err := ComputeReplicationFactors(specs, opts.ReplicationBudget, maxPerBlock, opts.MaxReplicationMoves)
	if err != nil {
		return fmt.Errorf("core: rep-factor phase: %w", err)
	}
	res.Targets = rf.Factors
	res.RepFactor = rf

	// Under-replicated blocks, hottest per-replica popularity first, so
	// the bounded copy budget goes where it matters most.
	type deficit struct {
		id   BlockID
		need int
		heat float64
	}
	var deficits []deficit
	for id, target := range rf.Factors {
		cur := p.ReplicaCount(id)
		if cur < target {
			deficits = append(deficits, deficit{id: id, need: target - cur, heat: p.PerReplicaPopularity(id)})
		}
	}
	sort.Slice(deficits, func(a, b int) bool {
		if !floatEq(deficits[a].heat, deficits[b].heat) {
			return deficits[a].heat > deficits[b].heat
		}
		return deficits[a].id < deficits[b].id
	})

	// Surplus candidates (current count above the new target) are
	// collected once, coldest first: dynamic replication only raises
	// counts toward targets, so no new surplus appears during the phase
	// and the queue stays valid under lazy re-checks.
	eq := newEvictQueue(p, rf.Factors)

	copies := 0
	for _, d := range deficits {
		for c := 0; c < d.need; c++ {
			if opts.MaxReplicationMoves > 0 && copies >= opts.MaxReplicationMoves {
				return nil
			}
			if !replicateOnce(p, d.id, eq, opts, res) {
				break // no host available even after eviction attempts
			}
			copies++
			res.Replications++
		}
	}
	return nil
}

// evictQueue holds lazy surplus-eviction candidates, coldest first.
type evictQueue struct {
	targets map[BlockID]int
	order   []BlockID
	pos     int
	scratch []topology.MachineID // reused by holder scans in evictSurplus
}

// newEvictQueue snapshots the blocks whose replica count exceeds their
// target, ordered by ascending per-replica popularity.
func newEvictQueue(p *Placement, targets map[BlockID]int) *evictQueue {
	eq := &evictQueue{targets: targets}
	type cand struct {
		id   BlockID
		heat float64
	}
	var cands []cand
	for _, id := range sortedTargetIDs(targets) {
		if p.ReplicaCount(id) > targets[id] {
			cands = append(cands, cand{id: id, heat: p.PerReplicaPopularity(id)})
		}
	}
	sort.Slice(cands, func(a, b int) bool {
		if !floatEq(cands[a].heat, cands[b].heat) {
			return cands[a].heat < cands[b].heat
		}
		return cands[a].id < cands[b].id
	})
	eq.order = make([]BlockID, len(cands))
	for i, c := range cands {
		eq.order[i] = c.id
	}
	return eq
}

// replicateOnce adds one replica of block id on the best destination,
// evicting surplus replicas if either the global replication budget or
// the cluster's capacity is exhausted (Section V's lazy deletion: stale
// replicas are reclaimed only when their space is needed). It reports
// whether a replica was added.
func replicateOnce(p *Placement, id BlockID, eq *evictQueue, opts *OptimizerOptions, res *OptimizeResult) bool {
	if p.TotalReplicas() >= opts.ReplicationBudget {
		if !evictSurplus(p, eq, id, opts, res) {
			return false
		}
	}
	dest := replicaDestination(p, id)
	if dest == topology.NoMachine {
		// Lazy deletion (Section V): reclaim space by dropping the
		// coldest surplus replica from a machine that could actually
		// host this block, then retry once.
		if !evictSurplus(p, eq, id, opts, res) {
			return false
		}
		dest = replicaDestination(p, id)
		if dest == topology.NoMachine {
			return false
		}
	}
	src := replicaSource(p, id)
	if err := p.AddReplica(id, dest); err != nil {
		return false
	}
	if opts.OnReplicate != nil {
		opts.OnReplicate(id, src, dest)
	}
	return true
}

// replicaDestination picks where a new replica of block id should go:
// the least-loaded machine in the least-loaded rack, preferring racks
// that widen the block's spread while it is below MinRacks.
func replicaDestination(p *Placement, id BlockID) topology.MachineID {
	spec, err := p.Spec(id)
	if err != nil {
		return topology.NoMachine
	}
	racks := racksByLoad(p)
	if p.RackSpread(id) < spec.MinRacks {
		if m := leastLoadedHost(p, id, racks, func(r topology.RackID) bool {
			return blockInRack(p, id, r)
		}); m != topology.NoMachine {
			return m
		}
	}
	return leastLoadedHost(p, id, racks, nil)
}

// replicaSource picks which existing holder a copy would stream from:
// the least-loaded holder, to disturb hotspots least. Returns NoMachine
// for an unplaced block.
func replicaSource(p *Placement, id BlockID) topology.MachineID {
	best := topology.NoMachine
	bestLoad := 0.0
	for _, m := range p.Replicas(id) {
		if best == topology.NoMachine || p.Load(m) < bestLoad {
			best, bestLoad = m, p.Load(m)
		}
	}
	return best
}

// evictSurplus removes one replica of a block whose current count
// exceeds its target, taking the coldest queued candidate whose removal
// keeps rack spread intact and frees a slot forBlock can use, never
// violating MinReplicas. Reports whether an eviction happened.
func evictSurplus(p *Placement, eq *evictQueue, forBlock BlockID, opts *OptimizerOptions, res *OptimizeResult) bool {
	for ; eq.pos < len(eq.order); eq.pos++ {
		id := eq.order[eq.pos]
		cur := p.ReplicaCount(id)
		spec, err := p.Spec(id)
		if err != nil {
			continue
		}
		if cur <= eq.targets[id] || cur <= spec.MinReplicas {
			continue
		}
		// Drop from the most-loaded holder whose removal keeps the rack
		// spread intact and frees a slot the incoming block can use.
		eq.scratch = appendReplicasByLoadDescending(p, id, eq.scratch[:0])
		for _, m := range eq.scratch {
			if p.HasReplica(forBlock, m) {
				continue // freeing this slot would not help forBlock
			}
			if !removalKeepsSpread(p, id, m, spec.MinRacks) {
				continue
			}
			if err := p.RemoveReplica(id, m); err != nil {
				continue
			}
			// Block may still hold more surplus: do not advance past it.
			res.Evictions++
			if opts.OnEvict != nil {
				opts.OnEvict(id, m)
			}
			return true
		}
	}
	return false
}

// sortedTargetIDs returns the target map's keys in ascending order so
// eviction scans are deterministic.
func sortedTargetIDs(targets map[BlockID]int) []BlockID {
	ids := make([]BlockID, 0, len(targets))
	for id := range targets {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	return ids
}

// appendReplicasByLoadDescending appends the holders of block id to buf
// from most to least loaded and returns the extended slice.
func appendReplicasByLoadDescending(p *Placement, id BlockID, buf []topology.MachineID) []topology.MachineID {
	start := len(buf)
	buf = p.AppendReplicas(id, buf)
	ms := buf[start:]
	sort.Slice(ms, func(a, b int) bool {
		la, lb := p.Load(ms[a]), p.Load(ms[b])
		if !floatEq(la, lb) {
			return la > lb
		}
		return ms[a] < ms[b]
	})
	return buf
}

// removalKeepsSpread reports whether removing block id's replica on m
// keeps the block across at least minRacks racks. The per-rack replica
// counts the placement already maintains answer this in O(1).
func removalKeepsSpread(p *Placement, id BlockID, m topology.MachineID, minRacks int) bool {
	rack, err := p.Cluster().RackOf(m)
	if err != nil {
		return false
	}
	b, ok := p.blocks[id]
	if !ok {
		return false
	}
	spread := len(b.rackCount)
	if b.rackCount[rack] == 1 {
		spread--
	}
	return spread >= minRacks
}
