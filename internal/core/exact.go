package core

import (
	"fmt"
	"math"
	"sort"

	"aurora/internal/topology"
)

// ExactOptimal computes the optimal objective λ* of the block placement
// problem by exhaustive enumeration: every block i is assigned to every
// feasible k_i-subset of machines (respecting capacity and rack spread),
// and the minimum over all complete assignments of the maximum machine
// load is returned.
//
// This is exponential and exists solely to verify the approximation
// guarantees of the local-search algorithms on small instances (the
// problem is NP-hard, Theorem 1). factors maps each block to its fixed
// replication factor; blocks absent from the map use their MinReplicas.
func ExactOptimal(cluster *topology.Cluster, specs []BlockSpec, factors map[BlockID]int) (float64, error) {
	if cluster == nil || cluster.NumMachines() == 0 {
		return 0, topology.ErrNoMachines
	}
	type item struct {
		spec BlockSpec
		k    int
	}
	items := make([]item, 0, len(specs))
	for _, s := range specs {
		if err := s.Validate(); err != nil {
			return 0, err
		}
		k := s.MinReplicas
		if f, ok := factors[s.ID]; ok {
			k = f
		}
		if k < s.MinRacks {
			return 0, fmt.Errorf("%w: block %d factor %d below rack spread %d", ErrBadSpec, s.ID, k, s.MinRacks)
		}
		if k > cluster.NumMachines() {
			return 0, fmt.Errorf("%w: block %d factor %d exceeds machine count", ErrBadSpec, s.ID, k)
		}
		items = append(items, item{spec: s, k: k})
	}
	// Assign heaviest blocks first: tighter pruning.
	sort.Slice(items, func(a, b int) bool {
		pa := items[a].spec.Popularity / float64(items[a].k)
		pb := items[b].spec.Popularity / float64(items[b].k)
		if !floatEq(pa, pb) {
			return pa > pb
		}
		return items[a].spec.ID < items[b].spec.ID
	})

	nm := cluster.NumMachines()
	loads := make([]float64, nm)
	used := make([]int, nm)
	caps := make([]int, nm)
	rackOf := make([]topology.RackID, nm)
	for i := 0; i < nm; i++ {
		caps[i] = cluster.Capacity(topology.MachineID(i))
		r, err := cluster.RackOf(topology.MachineID(i))
		if err != nil {
			return 0, err
		}
		rackOf[i] = r
	}

	best := math.Inf(1)
	subset := make([]int, 0, nm)

	var assignBlock func(bi int)
	// chooseMachines enumerates k-subsets of machines for items[bi]
	// starting at machine index `from`, then recurses to the next block.
	var chooseMachines func(bi, from, remaining int, racks map[topology.RackID]int)
	chooseMachines = func(bi, from, remaining int, racks map[topology.RackID]int) {
		if remaining == 0 {
			if len(racks) < items[bi].spec.MinRacks {
				return
			}
			assignBlock(bi + 1)
			return
		}
		if nm-from < remaining {
			return
		}
		perReplica := items[bi].spec.Popularity / float64(items[bi].k)
		for m := from; m < nm; m++ {
			if used[m] >= caps[m] {
				continue
			}
			if loads[m]+perReplica >= best {
				continue // placing here cannot beat the incumbent
			}
			used[m]++
			loads[m] += perReplica
			racks[rackOf[m]]++
			subset = append(subset, m)
			chooseMachines(bi, m+1, remaining-1, racks)
			subset = subset[:len(subset)-1]
			if racks[rackOf[m]]--; racks[rackOf[m]] == 0 {
				delete(racks, rackOf[m])
			}
			loads[m] -= perReplica
			used[m]--
		}
	}
	assignBlock = func(bi int) {
		if bi == len(items) {
			max := 0.0
			for _, l := range loads {
				if l > max {
					max = l
				}
			}
			if max < best {
				best = max
			}
			return
		}
		chooseMachines(bi, 0, items[bi].k, make(map[topology.RackID]int))
	}
	assignBlock(0)
	if math.IsInf(best, 1) {
		return 0, fmt.Errorf("%w: no feasible assignment exists", ErrInfeasible)
	}
	return best, nil
}

// LowerBound returns a valid lower bound on the optimal λ for fixed
// replication factors: the larger of the average machine load
// Σ_i P_i / |M| and the maximum per-replica popularity max_i P_i/k_i
// (some machine must host a replica of the hottest block). These are the
// two bounds the paper's proofs rely on.
func LowerBound(cluster *topology.Cluster, specs []BlockSpec, factors map[BlockID]int) float64 {
	var total, maxPer float64
	for _, s := range specs {
		total += s.Popularity
		k := s.MinReplicas
		if f, ok := factors[s.ID]; ok {
			k = f
		}
		if k < 1 {
			k = 1
		}
		if per := s.Popularity / float64(k); per > maxPer {
			maxPer = per
		}
	}
	avg := total / float64(cluster.NumMachines())
	if avg > maxPer {
		return avg
	}
	return maxPer
}
