package baseline

import (
	"fmt"
	"math"
	"sort"

	"aurora/internal/core"
	"aurora/internal/topology"
)

// ScarlettMode selects between the two replication-factor heuristics the
// Scarlett paper proposes. The Aurora paper compares against Priority,
// "which achieves better performance than round robin in experiments".
type ScarlettMode int

// Scarlett's two budget-distribution heuristics.
const (
	// Priority sorts blocks by popularity and gives each block its full
	// desired replica count, hottest first, until the budget runs out.
	Priority ScarlettMode = iota + 1
	// RoundRobin cycles over blocks in popularity order, granting one
	// extra replica per pass, so the budget spreads more evenly.
	RoundRobin
)

// Scarlett reimplements the Scarlett dynamic replication scheme as a
// baseline: popularity-proportional desired replica counts, a storage
// budget distributed by Priority or RoundRobin, and replica placement on
// lightly-loaded machines — but, unlike Aurora, no optimized initial
// placement and no Move/Swap load rebalancing (Section VI: "Scarlett is
// only designed for block replication, and does not consider initial
// block placement and dynamic load balancing").
type Scarlett struct {
	// Mode is the budget-distribution heuristic.
	Mode ScarlettMode
	// Budget is the maximum total replica count Σ k_i (the same β given
	// to Aurora for a fair comparison).
	Budget int
	// MaxPerBlock caps any single block's replica count; zero means the
	// cluster's machine count at Rebalance time.
	MaxPerBlock int
	// TargetLoadPerReplica is Scarlett's per-replica concurrency target:
	// a block with popularity P wants ceil(P / TargetLoadPerReplica)
	// replicas. Zero auto-calibrates so the total desired count roughly
	// matches the budget.
	TargetLoadPerReplica float64
}

// ScarlettResult reports one Scarlett rebalance epoch.
type ScarlettResult struct {
	// Factors are the replica targets chosen for every block.
	Factors map[core.BlockID]int
	// Replications is the number of replicas copied.
	Replications int
}

// Factors computes Scarlett's desired replication factors for the given
// specs without touching a placement.
func (s *Scarlett) Factors(specs []core.BlockSpec, maxPerBlock int) (map[core.BlockID]int, error) {
	if s.Budget <= 0 {
		return nil, fmt.Errorf("baseline: scarlett budget %d must be positive", s.Budget)
	}
	if maxPerBlock <= 0 {
		return nil, fmt.Errorf("baseline: scarlett maxPerBlock %d must be positive", maxPerBlock)
	}
	ordered := make([]core.BlockSpec, len(specs))
	copy(ordered, specs)
	sort.Slice(ordered, func(a, b int) bool {
		if ordered[a].Popularity != ordered[b].Popularity {
			return ordered[a].Popularity > ordered[b].Popularity
		}
		return ordered[a].ID < ordered[b].ID
	})

	factors := make(map[core.BlockID]int, len(ordered))
	used := 0
	for _, sp := range ordered {
		factors[sp.ID] = sp.MinReplicas
		used += sp.MinReplicas
	}
	if used > s.Budget {
		return nil, fmt.Errorf("baseline: %w: need %d, budget %d", core.ErrBudgetTooSmall, used, s.Budget)
	}

	target := s.TargetLoadPerReplica
	if target <= 0 {
		target = s.autoTarget(ordered)
	}
	desired := make(map[core.BlockID]int, len(ordered))
	for _, sp := range ordered {
		d := sp.MinReplicas
		if target > 0 {
			if want := int(math.Ceil(sp.Popularity / target)); want > d {
				d = want
			}
		}
		if d > maxPerBlock {
			d = maxPerBlock
		}
		desired[sp.ID] = d
	}

	switch s.Mode {
	case RoundRobin:
		// One extra replica per block per pass, hottest first.
		progress := true
		for progress && used < s.Budget {
			progress = false
			for _, sp := range ordered {
				if used >= s.Budget {
					break
				}
				if factors[sp.ID] < desired[sp.ID] {
					factors[sp.ID]++
					used++
					progress = true
				}
			}
		}
	default: // Priority
		for _, sp := range ordered {
			want := desired[sp.ID] - factors[sp.ID]
			if want <= 0 {
				continue
			}
			if avail := s.Budget - used; want > avail {
				want = avail
			}
			factors[sp.ID] += want
			used += want
			if used >= s.Budget {
				break
			}
		}
	}
	return factors, nil
}

// autoTarget picks a per-replica load target so that the total desired
// replica count approximately consumes the budget: T = Σ P_i / β.
func (s *Scarlett) autoTarget(specs []core.BlockSpec) float64 {
	var total float64
	for _, sp := range specs {
		total += sp.Popularity
	}
	if total == 0 {
		return 0
	}
	return total / float64(s.Budget)
}

// Rebalance runs one Scarlett replication epoch against the placement:
// compute factors from the blocks' current popularities and copy new
// replicas of under-replicated blocks onto the least-loaded machines.
// Over-replicated blocks are trimmed lazily only when space is needed,
// like Aurora, to keep the storage accounting comparable. No Move/Swap
// rebalancing is performed.
func (s *Scarlett) Rebalance(p *core.Placement) (ScarlettResult, error) {
	maxPerBlock := s.MaxPerBlock
	if maxPerBlock <= 0 {
		maxPerBlock = p.Cluster().NumMachines()
	}
	specs := make([]core.BlockSpec, 0, p.NumBlocks())
	for _, id := range p.Blocks() {
		sp, err := p.Spec(id)
		if err != nil {
			return ScarlettResult{}, err
		}
		specs = append(specs, sp)
	}
	factors, err := s.Factors(specs, maxPerBlock)
	if err != nil {
		return ScarlettResult{}, err
	}
	res := ScarlettResult{Factors: factors}

	type deficit struct {
		id   core.BlockID
		need int
		heat float64
	}
	var deficits []deficit
	for id, target := range factors {
		if cur := p.ReplicaCount(id); cur < target {
			deficits = append(deficits, deficit{id: id, need: target - cur, heat: p.PerReplicaPopularity(id)})
		}
	}
	sort.Slice(deficits, func(a, b int) bool {
		if deficits[a].heat != deficits[b].heat {
			return deficits[a].heat > deficits[b].heat
		}
		return deficits[a].id < deficits[b].id
	})
	// Surplus candidates are collected once, coldest first; replication
	// only raises counts toward targets, so the queue stays valid under
	// lazy re-checks (same optimization as Aurora's optimizer — a full
	// scan per eviction is quadratic at paper scale).
	evictQueue := surplusQueue(p, factors)
	for _, d := range deficits {
		for c := 0; c < d.need; c++ {
			// Enforce the global budget: stale surplus replicas from
			// earlier epochs count against beta and are evicted lazily
			// when their space is needed, exactly as in Aurora, so the
			// two systems compete under the same storage allowance.
			if p.TotalReplicas() >= s.Budget && !evictQueue.evictOne(p) {
				return res, nil
			}
			m := leastLoadedEligible(p, d.id)
			if m == topology.NoMachine {
				break
			}
			if err := p.AddReplica(d.id, m); err != nil {
				break
			}
			res.Replications++
		}
	}
	return res, nil
}

// evictionQueue holds surplus-eviction candidates, coldest first, with
// lazy validity re-checks.
type evictionQueue struct {
	targets map[core.BlockID]int
	order   []core.BlockID
	pos     int
}

// surplusQueue snapshots blocks whose replica count exceeds their
// target, ordered by ascending per-replica popularity (ties by ID).
func surplusQueue(p *core.Placement, targets map[core.BlockID]int) *evictionQueue {
	type cand struct {
		id   core.BlockID
		heat float64
	}
	var cands []cand
	for id, target := range targets {
		if p.ReplicaCount(id) > target {
			cands = append(cands, cand{id: id, heat: p.PerReplicaPopularity(id)})
		}
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].heat != cands[b].heat {
			return cands[a].heat < cands[b].heat
		}
		return cands[a].id < cands[b].id
	})
	q := &evictionQueue{targets: targets, order: make([]core.BlockID, len(cands))}
	for i, c := range cands {
		q.order[i] = c.id
	}
	return q
}

// evictOne drops the coldest queued surplus replica, never violating
// MinReplicas or MinRacks. Reports whether an eviction happened.
func (q *evictionQueue) evictOne(p *core.Placement) bool {
	for ; q.pos < len(q.order); q.pos++ {
		id := q.order[q.pos]
		cur := p.ReplicaCount(id)
		spec, err := p.Spec(id)
		if err != nil || cur <= q.targets[id] || cur <= spec.MinReplicas {
			continue
		}
		for _, m := range p.Replicas(id) {
			if !replicaRemovalKeepsSpread(p, id, m, spec.MinRacks) {
				continue
			}
			if p.RemoveReplica(id, m) == nil {
				return true // block may still hold surplus: stay on it
			}
		}
	}
	return false
}

// replicaRemovalKeepsSpread reports whether removing block id's replica
// on m keeps the block across at least minRacks racks.
func replicaRemovalKeepsSpread(p *core.Placement, id core.BlockID, m topology.MachineID, minRacks int) bool {
	rack, err := p.Cluster().RackOf(m)
	if err != nil {
		return false
	}
	inRack := 0
	spread := p.RackSpread(id)
	for _, holder := range p.Replicas(id) {
		if r, err := p.Cluster().RackOf(holder); err == nil && r == rack {
			inRack++
		}
	}
	if inRack == 1 {
		spread--
	}
	return spread >= minRacks
}

// leastLoadedEligible returns the least-loaded machine that can host a
// new replica of block id, or NoMachine.
func leastLoadedEligible(p *core.Placement, id core.BlockID) topology.MachineID {
	best := topology.NoMachine
	bestLoad := 0.0
	for _, m := range p.Cluster().Machines() {
		if p.HasReplica(id, m) || p.FreeCapacity(m) == 0 {
			continue
		}
		if best == topology.NoMachine || p.Load(m) < bestLoad {
			best, bestLoad = m, p.Load(m)
		}
	}
	return best
}
