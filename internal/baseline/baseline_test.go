package baseline

import (
	"errors"
	"math/rand/v2"
	"testing"

	"aurora/internal/core"
	"aurora/internal/topology"
)

func mustCluster(t *testing.T, racks, perRack, capacity int) *topology.Cluster {
	t.Helper()
	c, err := topology.Uniform(racks, perRack, capacity, 2)
	if err != nil {
		t.Fatalf("Uniform: %v", err)
	}
	return c
}

func mustPlacement(t *testing.T, c *topology.Cluster, specs []core.BlockSpec) *core.Placement {
	t.Helper()
	p, err := core.NewPlacement(c, specs)
	if err != nil {
		t.Fatalf("NewPlacement: %v", err)
	}
	return p
}

func spec(id core.BlockID, pop float64, k, rho int) core.BlockSpec {
	return core.BlockSpec{ID: id, Popularity: pop, MinReplicas: k, MinRacks: rho}
}

func newHDFS(t *testing.T, seed uint64) *HDFSPolicy {
	t.Helper()
	h, err := NewHDFSPolicy(rand.New(rand.NewPCG(seed, seed^0xabcdef)))
	if err != nil {
		t.Fatalf("NewHDFSPolicy: %v", err)
	}
	return h
}

func TestNewHDFSPolicyNilRand(t *testing.T) {
	if _, err := NewHDFSPolicy(nil); !errors.Is(err, ErrNilRand) {
		t.Errorf("err = %v, want ErrNilRand", err)
	}
}

func TestHDFSPlaceWriterLocalAndRemoteRack(t *testing.T) {
	cl := mustCluster(t, 4, 4, 100)
	h := newHDFS(t, 1)
	p := mustPlacement(t, cl, []core.BlockSpec{spec(1, 6, 3, 2)})
	writer := topology.MachineID(5)
	if err := h.Place(p, 1, 3, writer); err != nil {
		t.Fatalf("Place: %v", err)
	}
	if !p.HasReplica(1, writer) {
		t.Errorf("first replica not on writer; replicas = %v", p.Replicas(1))
	}
	if got := p.ReplicaCount(1); got != 3 {
		t.Errorf("ReplicaCount = %d, want 3", got)
	}
	if got := p.RackSpread(1); got < 2 {
		t.Errorf("RackSpread = %d, want >= 2", got)
	}
	if err := p.CheckFeasible(); err != nil {
		t.Errorf("CheckFeasible: %v", err)
	}
}

func TestHDFSPlaceNoWriter(t *testing.T) {
	cl := mustCluster(t, 3, 3, 50)
	h := newHDFS(t, 2)
	p := mustPlacement(t, cl, []core.BlockSpec{spec(1, 6, 3, 2)})
	if err := h.Place(p, 1, 3, topology.NoMachine); err != nil {
		t.Fatalf("Place: %v", err)
	}
	if got := p.ReplicaCount(1); got != 3 {
		t.Errorf("ReplicaCount = %d, want 3", got)
	}
	if got := p.RackSpread(1); got < 2 {
		t.Errorf("RackSpread = %d, want >= 2", got)
	}
}

func TestHDFSPlaceManyBlocksStaysFeasible(t *testing.T) {
	cl := mustCluster(t, 3, 5, 200)
	h := newHDFS(t, 3)
	var specs []core.BlockSpec
	for i := 1; i <= 100; i++ {
		specs = append(specs, spec(core.BlockID(i), float64(i), 3, 2))
	}
	p := mustPlacement(t, cl, specs)
	for _, s := range specs {
		if err := h.Place(p, s.ID, 3, topology.NoMachine); err != nil {
			t.Fatalf("Place %d: %v", s.ID, err)
		}
	}
	if err := p.CheckFeasible(); err != nil {
		t.Errorf("CheckFeasible: %v", err)
	}
	if err := p.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestHDFSPlaceRandomnessSpreadsLoad(t *testing.T) {
	// Random placement should use many machines, unlike a greedy pile-up.
	cl := mustCluster(t, 2, 10, 1000)
	h := newHDFS(t, 4)
	var specs []core.BlockSpec
	for i := 1; i <= 200; i++ {
		specs = append(specs, spec(core.BlockID(i), 1, 3, 2))
	}
	p := mustPlacement(t, cl, specs)
	for _, s := range specs {
		if err := h.Place(p, s.ID, 3, topology.NoMachine); err != nil {
			t.Fatalf("Place: %v", err)
		}
	}
	usedMachines := 0
	for _, m := range cl.Machines() {
		if p.Used(m) > 0 {
			usedMachines++
		}
	}
	if usedMachines < cl.NumMachines()*3/4 {
		t.Errorf("only %d/%d machines used by random placement", usedMachines, cl.NumMachines())
	}
}

func TestHDFSPlaceFullCluster(t *testing.T) {
	cl := mustCluster(t, 1, 2, 1)
	h := newHDFS(t, 5)
	p := mustPlacement(t, cl, []core.BlockSpec{spec(1, 1, 2, 1), spec(2, 1, 1, 1)})
	if err := h.Place(p, 1, 2, topology.NoMachine); err != nil {
		t.Fatalf("Place: %v", err)
	}
	if err := h.Place(p, 2, 1, topology.NoMachine); !errors.Is(err, ErrNoCapacity) {
		t.Errorf("full-cluster err = %v, want ErrNoCapacity", err)
	}
}

func TestScarlettFactorsPriority(t *testing.T) {
	s := &Scarlett{Mode: Priority, Budget: 12}
	specs := []core.BlockSpec{
		spec(1, 90, 1, 1),
		spec(2, 9, 1, 1),
		spec(3, 1, 1, 1),
	}
	// autoTarget = 100/12 ≈ 8.33; desired: ceil(90/8.33)=11, ceil(9/8.33)=2, 1.
	// Priority: block1 gets 11 (budget 3+10... used=3 min, +10 extra → 12? want=10, avail=9).
	factors, err := s.Factors(specs, 100)
	if err != nil {
		t.Fatalf("Factors: %v", err)
	}
	total := factors[1] + factors[2] + factors[3]
	if total > 12 {
		t.Errorf("total factors %d exceed budget 12", total)
	}
	if factors[1] <= factors[2] || factors[2] < factors[3] {
		t.Errorf("factors not popularity-ordered: %v", factors)
	}
	if factors[1] < 8 {
		t.Errorf("priority mode gave hot block only %d replicas: %v", factors[1], factors)
	}
}

func TestScarlettFactorsRoundRobin(t *testing.T) {
	s := &Scarlett{Mode: RoundRobin, Budget: 9, TargetLoadPerReplica: 10}
	specs := []core.BlockSpec{
		spec(1, 100, 1, 1), // desires 10
		spec(2, 100, 1, 1), // desires 10
		spec(3, 100, 1, 1), // desires 10
	}
	factors, err := s.Factors(specs, 100)
	if err != nil {
		t.Fatalf("Factors: %v", err)
	}
	// Round robin over 3 equal blocks with budget 9: each gets 3.
	for id := core.BlockID(1); id <= 3; id++ {
		if factors[id] != 3 {
			t.Errorf("factors[%d] = %d, want 3 (even split)", id, factors[id])
		}
	}
}

func TestScarlettFactorsErrors(t *testing.T) {
	s := &Scarlett{Mode: Priority, Budget: 0}
	if _, err := s.Factors(nil, 10); err == nil {
		t.Error("zero budget accepted")
	}
	s = &Scarlett{Mode: Priority, Budget: 1}
	if _, err := s.Factors([]core.BlockSpec{spec(1, 1, 3, 1)}, 10); !errors.Is(err, core.ErrBudgetTooSmall) {
		t.Errorf("err = %v, want ErrBudgetTooSmall", err)
	}
	s = &Scarlett{Mode: Priority, Budget: 5}
	if _, err := s.Factors(nil, 0); err == nil {
		t.Error("zero maxPerBlock accepted")
	}
}

func TestScarlettFactorsRespectsCap(t *testing.T) {
	s := &Scarlett{Mode: Priority, Budget: 100, TargetLoadPerReplica: 1}
	specs := []core.BlockSpec{spec(1, 1000, 1, 1)}
	factors, err := s.Factors(specs, 5)
	if err != nil {
		t.Fatalf("Factors: %v", err)
	}
	if factors[1] != 5 {
		t.Errorf("factors[1] = %d, want cap 5", factors[1])
	}
}

func TestScarlettRebalanceReplicatesHotBlock(t *testing.T) {
	cl := mustCluster(t, 2, 4, 50)
	rng := rand.New(rand.NewPCG(9, 9))
	h := newHDFS(t, 9)
	_ = rng
	specs := []core.BlockSpec{
		spec(1, 900, 3, 2),
		spec(2, 10, 3, 2),
	}
	p := mustPlacement(t, cl, specs)
	for _, s := range specs {
		if err := h.Place(p, s.ID, 3, topology.NoMachine); err != nil {
			t.Fatalf("Place: %v", err)
		}
	}
	s := &Scarlett{Mode: Priority, Budget: 10}
	res, err := s.Rebalance(p)
	if err != nil {
		t.Fatalf("Rebalance: %v", err)
	}
	if res.Replications == 0 {
		t.Error("no replications performed")
	}
	if got := p.ReplicaCount(1); got <= 3 {
		t.Errorf("hot block count = %d, want > 3", got)
	}
	if got := p.ReplicaCount(2); got != 3 {
		t.Errorf("cold block count = %d, want 3", got)
	}
	if p.TotalReplicas() > 10 {
		t.Errorf("total replicas %d exceed budget 10", p.TotalReplicas())
	}
	if err := p.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestScarlettRebalanceIdempotentWhenSatisfied(t *testing.T) {
	cl := mustCluster(t, 2, 4, 50)
	h := newHDFS(t, 10)
	specs := []core.BlockSpec{spec(1, 10, 3, 2)}
	p := mustPlacement(t, cl, specs)
	if err := h.Place(p, 1, 3, topology.NoMachine); err != nil {
		t.Fatalf("Place: %v", err)
	}
	s := &Scarlett{Mode: Priority, Budget: 5}
	first, err := s.Rebalance(p)
	if err != nil {
		t.Fatalf("Rebalance: %v", err)
	}
	second, err := s.Rebalance(p)
	if err != nil {
		t.Fatalf("Rebalance: %v", err)
	}
	if second.Replications != 0 {
		t.Errorf("second rebalance copied %d replicas (first %d), want 0", second.Replications, first.Replications)
	}
}
