// Package baseline implements the comparison systems from the paper's
// evaluation: the default HDFS random block placement policy and
// Scarlett's popularity-based replication heuristics (Ananthanarayanan et
// al., EuroSys'11). Aurora is compared against both in Section VI.
package baseline

import (
	"errors"
	"fmt"
	"math/rand/v2"

	"aurora/internal/core"
	"aurora/internal/topology"
)

// Errors returned by baseline placement.
var (
	ErrNoCapacity = errors.New("baseline: no machine with free capacity")
	ErrNilRand    = errors.New("baseline: nil random source")
)

// HDFSPolicy reproduces the default HDFS replica placement described in
// Section II of the paper: if the block is written by a task, the first
// replica goes to the writer machine and the remaining replicas to random
// machines in one random remote rack; otherwise all replicas go to random
// machines across two random racks. Replication factors are static.
type HDFSPolicy struct {
	rng *rand.Rand
}

// NewHDFSPolicy creates the policy with the given deterministic random
// source.
func NewHDFSPolicy(rng *rand.Rand) (*HDFSPolicy, error) {
	if rng == nil {
		return nil, ErrNilRand
	}
	return &HDFSPolicy{rng: rng}, nil
}

// Place writes k replicas of block id using the default HDFS policy.
// writer is the machine that produced the block, or topology.NoMachine.
// The block's MinRacks is honoured: racks are added until the spread
// requirement is met, mirroring HDFS's 2-rack default.
func (h *HDFSPolicy) Place(p *core.Placement, id core.BlockID, k int, writer topology.MachineID) error {
	spec, err := p.Spec(id)
	if err != nil {
		return err
	}
	if k < spec.MinReplicas {
		k = spec.MinReplicas
	}
	cl := p.Cluster()
	if k > cl.NumMachines() {
		k = cl.NumMachines()
	}

	// First replica: writer-local when written by a task, else random.
	if p.ReplicaCount(id) == 0 {
		first := writer
		if first == topology.NoMachine || p.FreeCapacity(first) == 0 {
			first, err = h.randomMachineWithCapacity(p, id, nil)
			if err != nil {
				return fmt.Errorf("baseline: first replica of block %d: %w", id, err)
			}
		}
		if err := p.AddReplica(id, first); err != nil {
			return fmt.Errorf("baseline: first replica of block %d: %w", id, err)
		}
	}

	// Pick the remote rack(s): enough random racks, excluding the first
	// replica's rack, to satisfy MinRacks (HDFS default: one remote
	// rack, giving a 2-rack spread).
	firstRack, err := cl.RackOf(p.Replicas(id)[0])
	if err != nil {
		return err
	}
	remoteRacks := h.pickRemoteRacks(cl, firstRack, spec.MinRacks-1)

	for p.ReplicaCount(id) < k {
		var m topology.MachineID
		var err error
		if p.RackSpread(id) < spec.MinRacks && len(remoteRacks) > 0 {
			// Next replica must land in a not-yet-used remote rack.
			rack := remoteRacks[0]
			remoteRacks = remoteRacks[1:]
			m, err = h.randomMachineWithCapacity(p, id, &rack)
			if err != nil {
				// Chosen rack full: fall back to any machine.
				m, err = h.randomMachineWithCapacity(p, id, nil)
			}
		} else {
			m, err = h.randomMachineWithCapacity(p, id, nil)
		}
		if err != nil {
			return fmt.Errorf("baseline: replica of block %d: %w", id, err)
		}
		if err := p.AddReplica(id, m); err != nil {
			return fmt.Errorf("baseline: replica of block %d: %w", id, err)
		}
	}
	return nil
}

// pickRemoteRacks chooses n distinct random racks other than exclude.
func (h *HDFSPolicy) pickRemoteRacks(cl *topology.Cluster, exclude topology.RackID, n int) []topology.RackID {
	if n <= 0 {
		return nil
	}
	racks := cl.Racks()
	h.rng.Shuffle(len(racks), func(i, j int) { racks[i], racks[j] = racks[j], racks[i] })
	var out []topology.RackID
	for _, r := range racks {
		if r == exclude {
			continue
		}
		out = append(out, r)
		if len(out) == n {
			break
		}
	}
	return out
}

// randomMachineWithCapacity returns a uniformly random machine (within
// rack, if given) that can host a new replica of block id.
func (h *HDFSPolicy) randomMachineWithCapacity(p *core.Placement, id core.BlockID, rack *topology.RackID) (topology.MachineID, error) {
	var pool []topology.MachineID
	if rack != nil {
		ms, err := p.Cluster().MachinesInRack(*rack)
		if err != nil {
			return topology.NoMachine, err
		}
		pool = ms
	} else {
		pool = p.Cluster().Machines()
	}
	// Rejection-sample a few times (fast path on mostly-empty clusters),
	// then fall back to an exhaustive filtered pick.
	for attempt := 0; attempt < 8; attempt++ {
		m := pool[h.rng.IntN(len(pool))]
		if !p.HasReplica(id, m) && p.FreeCapacity(m) > 0 {
			return m, nil
		}
	}
	var eligible []topology.MachineID
	for _, m := range pool {
		if !p.HasReplica(id, m) && p.FreeCapacity(m) > 0 {
			eligible = append(eligible, m)
		}
	}
	if len(eligible) == 0 {
		return topology.NoMachine, ErrNoCapacity
	}
	return eligible[h.rng.IntN(len(eligible))], nil
}
