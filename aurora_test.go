package aurora_test

import (
	"bytes"
	"testing"
	"time"

	"aurora"
)

// TestPublicAPIAlgorithms walks the algorithm layer exactly as the
// package documentation advertises.
func TestPublicAPIAlgorithms(t *testing.T) {
	cluster, err := aurora.UniformCluster(3, 4, 50, 4)
	if err != nil {
		t.Fatalf("UniformCluster: %v", err)
	}
	specs := []aurora.BlockSpec{
		{ID: 1, Popularity: 900, MinReplicas: 3, MinRacks: 2},
		{ID: 2, Popularity: 90, MinReplicas: 3, MinRacks: 2},
		{ID: 3, Popularity: 9, MinReplicas: 3, MinRacks: 2},
	}
	p, err := aurora.NewPlacement(cluster, specs)
	if err != nil {
		t.Fatalf("NewPlacement: %v", err)
	}
	for _, s := range specs {
		if err := aurora.PlaceBlock(p, s.ID, s.MinReplicas, aurora.NoMachine); err != nil {
			t.Fatalf("PlaceBlock: %v", err)
		}
	}
	if err := p.CheckFeasible(); err != nil {
		t.Fatalf("CheckFeasible: %v", err)
	}

	rf, err := aurora.ReplicationFactors(specs, 15, cluster.NumMachines(), 0)
	if err != nil {
		t.Fatalf("ReplicationFactors: %v", err)
	}
	if rf.Factors[1] <= rf.Factors[3] {
		t.Errorf("hot block factor %d <= cold %d", rf.Factors[1], rf.Factors[3])
	}

	res, err := aurora.Optimize(p, aurora.OptimizerOptions{
		Epsilon:           0.1,
		RackAware:         true,
		ReplicationBudget: 15,
	})
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if res.Replications == 0 {
		t.Error("Optimize performed no replications")
	}
	if sr, err := aurora.BalanceRacks(p, aurora.SearchOptions{}); err != nil || sr.FinalCost > sr.InitialCost {
		t.Errorf("BalanceRacks = %+v, %v", sr, err)
	}

	opt, err := aurora.ExactOptimal(cluster, specs[:2], nil)
	if err != nil {
		t.Fatalf("ExactOptimal: %v", err)
	}
	if lb := aurora.LowerBound(cluster, specs[:2], nil); lb > opt {
		t.Errorf("LowerBound %v exceeds OPT %v", lb, opt)
	}
}

// TestPublicAPIController drives the framework layer over a standalone
// placement.
func TestPublicAPIController(t *testing.T) {
	cluster, err := aurora.UniformCluster(2, 2, 20, 2)
	if err != nil {
		t.Fatalf("UniformCluster: %v", err)
	}
	specs := []aurora.BlockSpec{
		{ID: 1, MinReplicas: 2, MinRacks: 2},
		{ID: 2, MinReplicas: 2, MinRacks: 2},
	}
	p, err := aurora.NewPlacement(cluster, specs)
	if err != nil {
		t.Fatalf("NewPlacement: %v", err)
	}
	for _, s := range specs {
		if err := aurora.PlaceBlock(p, s.ID, 2, aurora.NoMachine); err != nil {
			t.Fatalf("PlaceBlock: %v", err)
		}
	}
	var now int64
	target, err := aurora.NewStandaloneTarget(p, 10, 2, func() int64 { return now })
	if err != nil {
		t.Fatalf("NewStandaloneTarget: %v", err)
	}
	for i := 0; i < 20; i++ {
		target.RecordAccess(1)
	}
	ctl, err := aurora.NewController(target, aurora.ControllerConfig{
		Period: time.Hour,
		Options: aurora.OptimizerOptions{
			RackAware:         true,
			ReplicationBudget: 6,
		},
	})
	if err != nil {
		t.Fatalf("NewController: %v", err)
	}
	defer ctl.Close()
	if _, err := ctl.RunOnce(); err != nil {
		t.Fatalf("RunOnce: %v", err)
	}
	if st := ctl.Stats(); st.Periods != 1 || st.Replications == 0 {
		t.Errorf("Stats = %+v, want 1 period with replications", st)
	}
}

// TestPublicAPIFileSystem drives the DFS layer end to end.
func TestPublicAPIFileSystem(t *testing.T) {
	nn, err := aurora.StartNameNode(aurora.NameNodeConfig{
		ExpectedNodes:     4,
		Racks:             2,
		BlockSize:         1 << 12,
		ReconcileInterval: 25 * time.Millisecond,
		Placer:            aurora.AuroraPlacer{},
	})
	if err != nil {
		t.Fatalf("StartNameNode: %v", err)
	}
	defer nn.Close()
	var dns []*aurora.DataNode
	for i := 0; i < 4; i++ {
		dn, err := aurora.StartDataNode(aurora.DataNodeConfig{
			NameNodeAddr:      nn.Addr(),
			Rack:              i % 2,
			CapacityBlocks:    128,
			HeartbeatInterval: 50 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("StartDataNode: %v", err)
		}
		defer dn.Close()
		dns = append(dns, dn)
	}
	if err := nn.WaitReady(5 * time.Second); err != nil {
		t.Fatalf("WaitReady: %v", err)
	}
	c := aurora.NewFSClient(nn.Addr(), aurora.WithBlockSize(1<<12), aurora.WithClientSeed(1))
	data := bytes.Repeat([]byte("aurora"), 1000)
	if err := c.Create("/pub", data, 3); err != nil {
		t.Fatalf("Create: %v", err)
	}
	got, err := c.Read("/pub")
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip mismatch")
	}
	ctl, err := aurora.NewController(nn, aurora.ControllerConfig{
		Period:  time.Hour,
		Options: aurora.OptimizerOptions{Epsilon: 0.1, RackAware: true},
	})
	if err != nil {
		t.Fatalf("NewController: %v", err)
	}
	defer ctl.Close()
	if _, err := ctl.RunOnce(); err != nil {
		t.Fatalf("RunOnce over namenode: %v", err)
	}
}
