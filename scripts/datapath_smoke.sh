#!/usr/bin/env bash
# datapath_smoke.sh — CI smoke test for the streamed data path.
#
# Boots the testbed experiment with streaming forced on (a small chunk
# size so every 4 KiB block crosses the wire as several frames, plus
# read-ahead), waits for the run to finish, scrapes /metrics and asserts
# the chunk/byte counters actually moved: a silent fallback to one-shot
# block RPCs would leave them at zero while every test still passes.
# See DESIGN.md §15 and `make datapath-smoke`.
set -euo pipefail

bin=$(mktemp /tmp/aurora-testbed.XXXXXX)
log=$(mktemp /tmp/datapath-smoke.XXXXXX)
pid=""
cleanup() {
    status=$?
    trap - EXIT INT TERM
    if [ -n "$pid" ]; then
        kill "$pid" 2>/dev/null || true
    fi
    rm -f "$bin" "$log"
    exit "$status"
}
trap cleanup EXIT INT TERM

go build -o "$bin" ./cmd/aurora-testbed

# 1 KiB chunks over 4 KiB blocks: >= 4 data frames per block write, and
# the same again per streamed read. The workload is the telemetry-smoke
# one, so the runtime envelope is identical.
"$bin" -nodes 6 -files 8 -jobs 60 \
    -chunk-size 1024 -read-ahead 2 -full-report-every 16 \
    -telemetry-addr 127.0.0.1:0 -telemetry-linger 60s >"$log" 2>&1 &
pid=$!

# The resolved listen address is printed as "telemetry listening on A:P".
addr=""
i=0
while [ "$i" -lt 30 ]; do
    addr=$(sed -n 's/^telemetry listening on //p' "$log" | head -n 1 || true)
    [ -n "$addr" ] && break
    if ! kill -0 "$pid" 2>/dev/null; then
        cat "$log"
        echo "datapath-smoke: testbed exited before announcing its endpoint" >&2
        exit 1
    fi
    i=$((i + 1))
    sleep 1
done
if [ -z "$addr" ]; then
    cat "$log"
    echo "datapath-smoke: no telemetry address after 30s" >&2
    exit 1
fi

# Wait for the run to complete so the counters are final.
i=0
while [ "$i" -lt 300 ]; do
    grep -q '^telemetry lingering' "$log" && break
    if ! kill -0 "$pid" 2>/dev/null; then
        cat "$log"
        echo "datapath-smoke: testbed exited before the linger window" >&2
        exit 1
    fi
    i=$((i + 1))
    sleep 1
done
if ! grep -q '^telemetry lingering' "$log"; then
    cat "$log"
    echo "datapath-smoke: run did not finish within 300s" >&2
    exit 1
fi

metrics=$(curl -fsS "http://$addr/metrics")

fail() {
    printf '%s\n' "$metrics" | grep '^aurora_stream' || true
    echo "datapath-smoke: $1" >&2
    exit 1
}

# positive <series-prefix>: the series must exist with a value > 0.
positive() {
    local v
    v=$(printf '%s\n' "$metrics" | sed -n "s/^$1 //p" | head -n 1 || true)
    [ -n "$v" ] || fail "$1 missing from /metrics"
    [ "$v" -gt 0 ] 2>/dev/null || fail "$1 is $v; expected > 0 (data path fell back to one-shot RPCs?)"
}

positive 'aurora_stream_chunks_total{dir="send"}'
positive 'aurora_stream_chunks_total{dir="recv"}'
positive 'aurora_stream_bytes_total{dir="send"}'
positive 'aurora_stream_bytes_total{dir="recv"}'

sent=$(printf '%s\n' "$metrics" | sed -n 's/^aurora_stream_chunks_total{dir="send"} //p' | head -n 1 || true)
echo "datapath-smoke: OK — $sent chunk frames sent through the streamed data path at $addr"
