#!/usr/bin/env bash
# telemetry_smoke.sh — CI smoke test for the live telemetry subsystem.
#
# Boots the testbed experiment with -telemetry-addr, waits for the run to
# finish (the endpoint lingers afterwards so the final metrics stay
# scrapeable), scrapes /metrics once and asserts the optimizer's SOL
# series, the per-machine load gauges and the per-RPC latency histograms
# are all exposed. See DESIGN.md §12 and `make telemetry-smoke`.
set -euo pipefail

bin=$(mktemp /tmp/aurora-testbed.XXXXXX)
log=$(mktemp /tmp/telemetry-smoke.XXXXXX)
pid=""
cleanup() {
    status=$?
    trap - EXIT INT TERM
    if [ -n "$pid" ]; then
        kill "$pid" 2>/dev/null || true
    fi
    rm -f "$bin" "$log"
    exit "$status"
}
trap cleanup EXIT INT TERM

go build -o "$bin" ./cmd/aurora-testbed

# A small workload keeps the smoke under a minute; the linger window is
# generous so a slow runner still gets its scrape in.
"$bin" -nodes 6 -files 8 -jobs 60 \
    -telemetry-addr 127.0.0.1:0 -telemetry-linger 60s >"$log" 2>&1 &
pid=$!

# The resolved listen address is printed as "telemetry listening on A:P".
addr=""
i=0
while [ "$i" -lt 30 ]; do
    addr=$(sed -n 's/^telemetry listening on //p' "$log" | head -n 1 || true)
    [ -n "$addr" ] && break
    if ! kill -0 "$pid" 2>/dev/null; then
        cat "$log"
        echo "telemetry-smoke: testbed exited before announcing its endpoint" >&2
        exit 1
    fi
    i=$((i + 1))
    sleep 1
done
if [ -z "$addr" ]; then
    cat "$log"
    echo "telemetry-smoke: no telemetry address after 30s" >&2
    exit 1
fi

# Wait for the run to complete so the optimizer series are final.
i=0
while [ "$i" -lt 300 ]; do
    grep -q '^telemetry lingering' "$log" && break
    if ! kill -0 "$pid" 2>/dev/null; then
        cat "$log"
        echo "telemetry-smoke: testbed exited before the linger window" >&2
        exit 1
    fi
    i=$((i + 1))
    sleep 1
done
if ! grep -q '^telemetry lingering' "$log"; then
    cat "$log"
    echo "telemetry-smoke: run did not finish within 300s" >&2
    exit 1
fi

metrics=$(curl -fsS "http://$addr/metrics")

fail() {
    printf '%s\n' "$metrics" | head -n 40 || true
    echo "telemetry-smoke: $1" >&2
    exit 1
}
printf '%s\n' "$metrics" | grep -q '^aurora_optimizer_sol ' \
    || fail "aurora_optimizer_sol missing from /metrics"
printf '%s\n' "$metrics" | grep -q '^aurora_machine_load{' \
    || fail "per-machine load gauges missing from /metrics"
printf '%s\n' "$metrics" | grep -q '^aurora_rpc_latency_seconds_bucket{' \
    || fail "per-RPC latency histograms missing from /metrics"

curl -fsS "http://$addr/healthz" >/dev/null || fail "/healthz not serving"

lines=$(printf '%s\n' "$metrics" | wc -l)
echo "telemetry-smoke: OK — scraped $lines series lines from $addr"
