#!/usr/bin/env bash
# scenario_smoke.sh — CI smoke test for the predictor scenario matrix.
#
# Runs the seeded flashcrowd+diurnal sweep (reactive vs seasonal) twice
# and asserts three things:
#   1. determinism — the two runs' stdout is byte-identical;
#   2. telemetry  — the exported aurora_predictor_* series are present
#      and nonzero in the Prometheus dump;
#   3. the paper claim — the seasonal predictor's mean per-period SOL is
#      STRICTLY lower than reactive's on both scenarios.
# See DESIGN.md §17 and `make scenario-smoke`.
set -euo pipefail

bin=$(mktemp /tmp/aurora-sim.XXXXXX)
dir=$(mktemp -d /tmp/scenario-smoke.XXXXXX)
cleanup() {
    status=$?
    trap - EXIT INT TERM
    rm -rf "$bin" "$dir"
    exit "$status"
}
trap cleanup EXIT INT TERM

go build -o "$bin" ./cmd/aurora-sim

run_matrix() {
    "$bin" -experiment scenarios \
        -scenarios diurnal,flashcrowd \
        -predictors reactive,seasonal \
        -seed 42 -files 60 -hours 24 -jobs-per-hour 600 -period-hours 6 \
        -metrics-out "$1"
}

run_matrix "$dir/metrics1.prom" >"$dir/run1.txt"
run_matrix "$dir/metrics2.prom" >"$dir/run2.txt"

fail() {
    cat "$dir/run1.txt" || true
    echo "scenario-smoke: $1" >&2
    exit 1
}

# 1. Byte-identical output across runs (the -metrics-out path differs, so
# strip that trailer line before diffing; the matrix itself must match).
grep -v '^metrics written to ' "$dir/run1.txt" >"$dir/run1.stable"
grep -v '^metrics written to ' "$dir/run2.txt" >"$dir/run2.stable"
diff -u "$dir/run1.stable" "$dir/run2.stable" \
    || fail "matrix output is not byte-identical across runs"

# 2. Prediction-error telemetry exported and nonzero.
grep -q '^aurora_predictor_periods_total{' "$dir/metrics1.prom" \
    || fail "aurora_predictor_periods_total missing from metrics dump"
awk '/^aurora_predictor_periods_total\{/ { if ($NF + 0 > 0) found = 1 } END { exit !found }' "$dir/metrics1.prom" \
    || fail "aurora_predictor_periods_total is zero"
grep -q '^aurora_predictor_wae{' "$dir/metrics1.prom" \
    || fail "aurora_predictor_wae missing from metrics dump"
awk '/^aurora_predictor_wae\{/ { if ($NF + 0 > 0) found = 1 } END { exit !found }' "$dir/metrics1.prom" \
    || fail "aurora_predictor_wae is zero for every cell"
grep -q '^aurora_predictor_topk_overlap{' "$dir/metrics1.prom" \
    || fail "aurora_predictor_topk_overlap missing from metrics dump"

# 3. Seasonal strictly beats reactive mean SOL on both scenarios.
sol() {
    sed -n "s/^cell scenario=$1 predictor=$2 mean_sol=\([0-9.]*\).*/\1/p" "$dir/run1.txt"
}
for scenario in diurnal flashcrowd; do
    reactive=$(sol "$scenario" reactive)
    seasonal=$(sol "$scenario" seasonal)
    [ -n "$reactive" ] && [ -n "$seasonal" ] \
        || fail "missing cell line for scenario $scenario"
    awk -v s="$seasonal" -v r="$reactive" 'BEGIN { exit !(s + 0 < r + 0) }' \
        || fail "$scenario: seasonal mean SOL $seasonal not strictly below reactive $reactive"
    echo "scenario-smoke: $scenario seasonal SOL $seasonal < reactive $reactive"
done

echo "scenario-smoke: OK — deterministic matrix, nonzero predictor telemetry, seasonal beats reactive"
